package conformance

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/stream"
)

// This file is the per-epoch differential harness for the streaming
// subsystem: every mutation sequence is replayed through stream.Replayer
// (the same warm-path selection the serving tier uses) and the warm state
// is compared against a cold Solve of the current graph after EVERY
// epoch, not just at the end — a wrong intermediate fixed point cannot
// hide behind a later mutation that happens to repair it.

// streamAlgorithms is the algorithm slice of the streaming matrix: the
// two warm-path regimes (sum-based pr; monotone sssp/cc/reach) across
// min- and max-reducing and constant-propagating algorithms.
func streamAlgorithms(t *testing.T) []AlgCase {
	t.Helper()
	var out []AlgCase
	for _, name := range []string{"pagerank-delta", "sssp", "connected-components", "reach"} {
		c, err := AlgCaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

// streamEngines is the engine slice: the serial worklist solver and the
// sharded parallel solver, the two backends the serving tier warm-starts.
func streamEngines() []Engine {
	return []Engine{EngineSolve(), EnginePSolve(PSolveConfig())}
}

// engineSolveFunc adapts a conformance Engine to the Replayer's
// engine-agnostic solve hook.
func engineSolveFunc(e Engine) stream.SolveFunc {
	return func(g *graph.CSR, alg algorithms.Algorithm) ([]float64, error) {
		return e.Run(g, func() algorithms.Algorithm { return alg })
	}
}

// checkEpoch compares the replayer's warm state for the current epoch
// against a cold solve of the current graph.
func checkEpoch(t *testing.T, label string, r *stream.Replayer, mk func() algorithms.Algorithm, tol float64) {
	t.Helper()
	got, err := r.State()
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	want := algorithms.Solve(r.Graph(), mk()).Values
	if err := CompareValues(fmt.Sprintf("%s (epoch %d, mode %s)", label, r.Epoch, r.LastMode), got, want, tol); err != nil {
		t.Fatal(err)
	}
}

// TestStreamOracleMatrix scripts one mutation sequence — insert-only,
// delete-only, mixed insert+delete of base edges, and a window expiry —
// over every (algorithm, engine) pair of the streaming matrix, checking
// the warm state against the cold oracle after each epoch.
func TestStreamOracleMatrix(t *testing.T) {
	base, err := Shapes()[1].Build(43) // erdos-renyi, 220 vertices
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range streamAlgorithms(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for _, e := range streamEngines() {
				e := e
				t.Run(e.Name, func(t *testing.T) {
					t.Parallel()
					prepared := c.Prepared(base)
					mk := c.Maker(BestRoot(prepared))
					// Warm and cold runs each carry their own threshold
					// residue for the sum-based algorithms.
					tol := 2 * Tolerance(mk(), prepared)
					r := stream.NewReplayer(prepared, mk, engineSolveFunc(e), 1)
					label := fmt.Sprintf("stream/%s/%s", c.Name, e.Name)

					ins := []graph.Edge{
						{Src: 3, Dst: 141, Weight: 0.2}, {Src: 141, Dst: 77, Weight: 0.4},
						{Src: 77, Dst: 3, Weight: 0.6}, {Src: 200, Dst: 10, Weight: 0.8},
					}
					if err := r.Apply(ins, nil, time.Unix(1, 0)); err != nil {
						t.Fatal(err)
					}
					checkEpoch(t, label+"/insert", r, mk, tol)

					if err := r.Apply(nil, ins[:2], time.Unix(2, 0)); err != nil {
						t.Fatal(err)
					}
					checkEpoch(t, label+"/delete", r, mk, tol)

					victim := prepared.Edges()[0]
					if err := r.Apply(
						[]graph.Edge{{Src: 50, Dst: 51, Weight: 0.3}},
						[]graph.Edge{victim}, time.Unix(3, 0)); err != nil {
						t.Fatal(err)
					}
					checkEpoch(t, label+"/mixed", r, mk, tol)

					// Everything timestamped and still live ages out; the
					// surviving base edges are permanent.
					n, err := r.Expire(time.Unix(500, 0), 10*time.Second)
					if err != nil {
						t.Fatal(err)
					}
					if n != 3 {
						t.Fatalf("expired %d edges, want the 3 live timestamped inserts", n)
					}
					checkEpoch(t, label+"/expire", r, mk, tol)

					if r.SeedStarts == 0 || r.ConeStarts == 0 {
						t.Fatalf("warm paths not exercised: seed=%d cone=%d replay=%d",
							r.SeedStarts, r.ConeStarts, r.Replays)
					}
				})
			}
		})
	}
}

// TestStreamRandomizedStress replays a seeded random interleaving of
// inserts, deletes, and window expirations over a Table IV tiny-tier
// stand-in, holding every epoch to the cold oracle. Deletes draw from the
// pool of previously inserted edges (so most epochs get a nontrivial
// cone) and occasionally from the base edge set.
func TestStreamRandomizedStress(t *testing.T) {
	ds, err := gen.DatasetByAbbrev("WG")
	if err != nil {
		t.Fatal(err)
	}
	base, err := gen.Default.Generate(ds, gen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 5
	for _, c := range streamAlgorithms(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for ei, e := range streamEngines() {
				e, ei := e, ei
				t.Run(e.Name, func(t *testing.T) {
					t.Parallel()
					prepared := c.Prepared(base)
					n := prepared.NumVertices()
					mk := c.Maker(BestRoot(prepared))
					tol := 2 * Tolerance(mk(), prepared)
					r := stream.NewReplayer(prepared, mk, engineSolveFunc(e), stream.DefaultMaxConeFraction)
					rng := rand.New(rand.NewSource(int64(1000*ei) + int64(len(c.Name))))
					label := fmt.Sprintf("stress/%s/%s", c.Name, e.Name)

					var pool []graph.Edge // inserted and not yet deleted
					now := time.Unix(10, 0)
					for epoch := 0; epoch < epochs; epoch++ {
						now = now.Add(time.Duration(1+rng.Intn(20)) * time.Second)
						var ins, dels []graph.Edge
						for i := 0; i < 4+rng.Intn(8); i++ {
							ins = append(ins, graph.Edge{
								Src:    graph.VertexID(rng.Intn(n)),
								Dst:    graph.VertexID(rng.Intn(n)),
								Weight: float32(rng.Intn(100)+1) / 100,
							})
						}
						for i := 0; i < rng.Intn(4) && len(pool) > 0; i++ {
							j := rng.Intn(len(pool))
							dels = append(dels, pool[j])
							pool = append(pool[:j], pool[j+1:]...)
						}
						if rng.Intn(3) == 0 { // sometimes delete a base edge
							dels = append(dels, prepared.Edges()[rng.Intn(prepared.NumEdges())])
						}
						if err := r.Apply(ins, dels, now); err != nil {
							t.Fatalf("%s epoch %d: %v", label, epoch, err)
						}
						pool = append(pool, ins...)
						checkEpoch(t, label+"/mutate", r, mk, tol)

						if rng.Intn(3) == 0 {
							if _, err := r.Expire(now, 15*time.Second); err != nil {
								t.Fatalf("%s epoch %d expire: %v", label, epoch, err)
							}
							checkEpoch(t, label+"/expire", r, mk, tol)
						}
					}
				})
			}
		})
	}
}

// TestMetamorphicInsertDeleteNoop wires the insert-then-delete round-trip
// invariant into the shapes × algorithms matrix for the serial and
// parallel solvers.
func TestMetamorphicInsertDeleteNoop(t *testing.T) {
	for _, shape := range metamorphicShapes(t) {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			t.Parallel()
			g, err := shape.Build(53)
			if err != nil {
				t.Fatal(err)
			}
			batch := randomInsertions(g, 10, 59)
			for _, c := range Algorithms() {
				c := c
				if !c.Incremental {
					continue
				}
				t.Run(c.Name, func(t *testing.T) {
					t.Parallel()
					if err := VerifyInsertDeleteNoop(g, c, batch); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}
