// Package conformance is the repository's differential-testing subsystem:
// it runs any (graph, algorithm) pair through every engine — the textbook
// reference oracles, the algorithms.Solve worklist, the psolve sharded
// parallel solver, the GraphPulse accelerator model, the Graphicionado
// baseline, and the Ligra baseline — and asserts that they all converge to
// the same fixed point, within the single tolerance policy defined in this
// package (see Tolerance). The engine set itself comes from the
// internal/engines registry, so a newly registered engine joins the matrix
// without this package growing another hand-maintained case.
//
// The paper's evaluation (Section VI) compares only cycle counts across
// engines; that comparison is meaningful only if the engines are
// value-equivalent. This package is the standing correctness gate that
// makes the claim checkable: table-driven suites exercise a shapes ×
// algorithms matrix, metamorphic suites check relabeling/transpose/
// partitioning/incremental invariances, and native Go fuzz targets
// (FuzzEngineAgreement, FuzzGraphIORoundTrip, FuzzIncrementalInsert) search
// for divergence continuously.
//
// Engine-specific invariants ride along with every Verify call:
//
//   - event conservation in the accelerator (queue arrivals = emitted +
//     initial events; processed = arrivals - coalesced),
//   - cycle-count determinism (same config + graph ⇒ bit-identical Result,
//     run-to-run and under concurrent execution),
//   - the algebraic laws event coalescing relies on (CheckAlgebraicLaws).
package conformance

import (
	"fmt"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/baseline/graphicionado"
	"graphpulse/internal/baseline/ligra"
	"graphpulse/internal/core"
	"graphpulse/internal/engines"
	"graphpulse/internal/graph"
	"graphpulse/internal/psolve"
)

// Engine is one way of driving an Algorithm over a graph to its fixed
// point. Run must be safe for concurrent use with distinct arguments.
type Engine struct {
	// Name labels the engine in failure messages ("accelerator").
	Name string
	// Run executes a fresh algorithm from mk over g and returns the
	// converged per-vertex values.
	Run func(g graph.Adjacency, mk func() algorithms.Algorithm) ([]float64, error)
}

// EngineSolve wraps the sequential coalescing worklist (Algorithm 1 of the
// paper in software) — the golden model the other engines are held to.
func EngineSolve() Engine {
	return Engine{
		Name: "solve",
		Run: func(g graph.Adjacency, mk func() algorithms.Algorithm) ([]float64, error) {
			return algorithms.Solve(g, mk()).Values, nil
		},
	}
}

// EngineAccelerator wraps the GraphPulse cycle model under cfg.
func EngineAccelerator(cfg core.Config) Engine {
	return Engine{
		Name: "accelerator[" + cfg.Name + "]",
		Run: func(g graph.Adjacency, mk func() algorithms.Algorithm) ([]float64, error) {
			res, err := runAccelerator(cfg, g, mk())
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		},
	}
}

// EngineGraphicionado wraps the BSP hardware baseline under cfg.
func EngineGraphicionado(cfg graphicionado.Config) Engine {
	return Engine{
		Name: "graphicionado",
		Run: func(g graph.Adjacency, mk func() algorithms.Algorithm) ([]float64, error) {
			res, err := graphicionado.Run(cfg, g, mk())
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		},
	}
}

// EngineLigra wraps the software baseline under cfg.
func EngineLigra(cfg ligra.Config) Engine {
	return Engine{
		Name: "ligra",
		Run: func(g graph.Adjacency, mk func() algorithms.Algorithm) ([]float64, error) {
			return ligra.New(cfg, g).Run(mk()).Values, nil
		},
	}
}

// EnginePSolve wraps the sharded parallel worklist solver under cfg.
func EnginePSolve(cfg psolve.Config) Engine {
	return Engine{
		Name: fmt.Sprintf("psolve[w=%d]", cfg.Workers),
		Run: func(g graph.Adjacency, mk func() algorithms.Algorithm) ([]float64, error) {
			res, err := psolve.SolveCtx(nil, g, mk(), cfg)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		},
	}
}

// FromRegistry adapts an internal/engines registry engine to the
// conformance harness, for engines that need no suite-specific
// configuration or invariants.
func FromRegistry(e engines.Engine) Engine {
	return Engine{
		Name: e.Name(),
		Run: func(g graph.Adjacency, mk func() algorithms.Algorithm) ([]float64, error) {
			res, err := e.SolveCtx(nil, g, mk())
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		},
	}
}

// AcceleratorConfig is the conformance-suite accelerator build: the paper's
// optimized design with the cycle deadline raised (tiny adversarial graphs
// such as long chains burn many rounds).
func AcceleratorConfig() core.Config {
	cfg := core.OptimizedConfig()
	cfg.MaxCycles = 1_000_000_000
	return cfg
}

// LigraConfig is the conformance-suite Ligra build: a small fixed worker
// count so heavily parallel test runs don't oversubscribe the host.
func LigraConfig() ligra.Config {
	cfg := ligra.DefaultConfig()
	cfg.Threads = 4
	return cfg
}

// PSolveConfig is the conformance-suite parallel-solver build: like
// LigraConfig, a small fixed shard count so heavily parallel test runs
// don't oversubscribe the host, while still exercising cross-shard
// exchange.
func PSolveConfig() psolve.Config {
	cfg := psolve.DefaultConfig()
	cfg.Workers = 4
	return cfg
}

// Engines returns the default engine set compared by Verify, one entry per
// internal/engines registry name. Engines carrying suite-specific
// configuration or invariants (the accelerator's raised cycle deadline and
// event-conservation check, the fixed worker counts for Ligra and psolve)
// keep their dedicated wrappers; anything newly registered flows through
// FromRegistry untouched. Together with the reference oracle consulted by
// Verify itself, this covers all six implementations in the repository.
func Engines() []Engine {
	var out []Engine
	for _, name := range engines.Names() {
		switch name {
		case engines.Solve:
			out = append(out, EngineSolve())
		case engines.PSolve:
			out = append(out, EnginePSolve(PSolveConfig()))
		case engines.Accel:
			out = append(out, EngineAccelerator(AcceleratorConfig()))
		case engines.Graphicionado:
			out = append(out, EngineGraphicionado(graphicionado.DefaultConfig()))
		case engines.Ligra:
			out = append(out, EngineLigra(LigraConfig()))
		default:
			e, err := engines.Lookup(name)
			if err != nil {
				panic(fmt.Sprintf("conformance: registry name %q has no engine: %v", name, err))
			}
			out = append(out, FromRegistry(e))
		}
	}
	return out
}

// Options tunes Verify.
type Options struct {
	// Engines to run; nil means Engines().
	Engines []Engine
	// SkipLaws disables the algebraic-law check.
	SkipLaws bool
}

// Verify runs a fresh algorithm from mk over g on every engine and checks:
//
//  1. every engine's converged values agree with the reference oracle (or,
//     for algorithms without one, with the worklist solver) within
//     Tolerance;
//  2. the accelerator's event-flow counters balance (conservation;
//     applied to every accelerator engine run);
//  3. the algorithm satisfies the reduce laws coalescing relies on, probed
//     on values drawn from the converged state.
//
// Bit-level run-to-run determinism is checked separately by
// VerifyDeterminism, which must run the machine multiple times.
//
// It returns the first violation found, or nil.
func Verify(g *graph.CSR, mk func() algorithms.Algorithm, opts Options) error {
	engines := opts.Engines
	if engines == nil {
		engines = Engines()
	}
	alg := mk()
	want, haveOracle := algorithms.ReferenceSolution(g, alg)
	oracleName := "oracle"
	if !haveOracle {
		want = algorithms.Solve(g, mk()).Values
		oracleName = "solve"
	}
	tol := Tolerance(alg, g)
	if !opts.SkipLaws {
		if err := algorithms.CheckAlgebraicLaws(alg, lawSamples(alg, want)); err != nil {
			return err
		}
	}
	for _, e := range engines {
		got, err := e.Run(g, mk)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if err := CompareValues(fmt.Sprintf("%s vs %s on %s", e.Name, oracleName, alg.Name()), got, want, tol); err != nil {
			return err
		}
	}
	return nil
}

// VerifyEngine checks a single engine against the reference oracle (or the
// worklist solver) for one algorithm. Baseline packages use it so their
// oracle comparisons share this package's tolerance policy.
func VerifyEngine(e Engine, g *graph.CSR, mk func() algorithms.Algorithm) error {
	return Verify(g, mk, Options{Engines: []Engine{e}, SkipLaws: true})
}

// lawSamples builds a probe set for CheckAlgebraicLaws from the converged
// values: the identity, small constants, and a spread of actual fixed-point
// values, so the laws are tested on the domain the run really visited.
func lawSamples(alg algorithms.Algorithm, values []float64) []algorithms.Value {
	samples := []algorithms.Value{alg.Identity(), 0, 1, -1, 0.5}
	for i := 0; i < len(values) && len(samples) < 12; i += 1 + len(values)/8 {
		samples = append(samples, values[i])
	}
	return samples
}

// runAccelerator builds and runs one accelerator and applies the event-
// conservation invariant to its result. Determinism is checked separately
// by VerifyDeterminism, which needs to run the machine twice.
func runAccelerator(cfg core.Config, g graph.Adjacency, alg algorithms.Algorithm) (*core.Result, error) {
	a, err := core.New(cfg, g, alg)
	if err != nil {
		return nil, err
	}
	res, err := a.Run()
	if err != nil {
		return nil, err
	}
	if err := CheckConservation(res, len(alg.InitialEvents(g))); err != nil {
		return nil, err
	}
	return res, nil
}

// CheckConservation verifies the accelerator's event-flow accounting: with
// clean termination (no global-progress early stop) every event inserted
// into a coalescing queue was either coalesced into a resident event or
// processed, and every queue arrival is accounted for by an emitted event,
// a re-inserted spill, or a bootstrap event:
//
//	Σ produced == emitted + initial        (spills re-enter on swap-in)
//	Σ produced - Σ coalesced == Σ processed
//	Σ processed == EventsProcessed
//	final round's Remaining == 0
//
// A violated balance means events were lost or double-delivered by the
// queue, crossbar, spill, or scheduler machinery — exactly the bug class
// that silently corrupts results.
func CheckConservation(res *core.Result, initialEvents int) error {
	if res.TerminatedGlobally {
		// The early-termination path deliberately drops sub-threshold
		// events, so the balances below do not apply.
		return nil
	}
	var produced, coalesced, processed int64
	for _, rs := range res.RoundLog {
		produced += rs.Produced
		coalesced += rs.Coalesced
		processed += rs.Processed
	}
	if got, want := produced, res.EventsEmitted+int64(initialEvents); got != want {
		return fmt.Errorf("conformance: conservation: produced %d != emitted %d + initial %d",
			got, res.EventsEmitted, initialEvents)
	}
	if got, want := produced-coalesced, processed; got != want {
		return fmt.Errorf("conformance: conservation: produced %d - coalesced %d != processed %d",
			produced, coalesced, want)
	}
	if processed != res.EventsProcessed {
		return fmt.Errorf("conformance: conservation: round log processed %d != counter %d",
			processed, res.EventsProcessed)
	}
	if n := len(res.RoundLog); n > 0 {
		if rem := res.RoundLog[n-1].Remaining; rem != 0 {
			return fmt.Errorf("conformance: conservation: %d events resident after final round", rem)
		}
	}
	return nil
}

// VerifyDeterminism runs the accelerator `runs` times over (cfg, g, mk) and
// requires bit-identical results: same Values, same cycle count, same event
// counters. The simulation has no hidden entropy, so any divergence is a
// nondeterminism bug (map iteration, uninitialized state, data races).
// Callers may invoke it from concurrently running tests; each call builds
// private accelerators.
func VerifyDeterminism(cfg core.Config, g *graph.CSR, mk func() algorithms.Algorithm, runs int) error {
	var first *core.Result
	for i := 0; i < runs; i++ {
		res, err := runAccelerator(cfg, g, mk())
		if err != nil {
			return err
		}
		if first == nil {
			first = res
			continue
		}
		if err := sameResult(first, res); err != nil {
			return fmt.Errorf("conformance: run %d differs from run 0: %w", i, err)
		}
	}
	return nil
}

// sameResult compares the deterministic fields of two accelerator results.
func sameResult(a, b *core.Result) error {
	if a.Cycles != b.Cycles {
		return fmt.Errorf("cycles %d != %d", a.Cycles, b.Cycles)
	}
	if a.Rounds != b.Rounds {
		return fmt.Errorf("rounds %d != %d", a.Rounds, b.Rounds)
	}
	if a.EventsProcessed != b.EventsProcessed || a.EventsEmitted != b.EventsEmitted ||
		a.EventsCoalesced != b.EventsCoalesced || a.SpilledEvents != b.SpilledEvents {
		return fmt.Errorf("event counters (%d,%d,%d,%d) != (%d,%d,%d,%d)",
			a.EventsProcessed, a.EventsEmitted, a.EventsCoalesced, a.SpilledEvents,
			b.EventsProcessed, b.EventsEmitted, b.EventsCoalesced, b.SpilledEvents)
	}
	if a.MemReads != b.MemReads || a.MemWrites != b.MemWrites {
		return fmt.Errorf("memory traffic (%d,%d) != (%d,%d)", a.MemReads, a.MemWrites, b.MemReads, b.MemWrites)
	}
	return CompareValues("determinism", a.Values, b.Values, 0)
}
