package conformance

import (
	"fmt"
	"math"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
)

// This file is the single home of the repository's float-comparison policy.
// Every engine-vs-oracle and engine-vs-engine value comparison goes through
// Tolerance + CompareValues; per-package tests must not invent their own
// epsilons.
//
// Policy:
//
//   - Monotone algorithms (min/max reduce: SSSP, BFS, Reach, CC, SSWP,
//     ReliablePath) converge to a fixed point that is the min/max over a
//     finite set of float-evaluated path values. That set does not depend on
//     scheduling, so every engine must agree EXACTLY (tolerance 0, with
//     ±Inf treated as equal to itself).
//
//   - Sum-based algorithms (PageRankDelta, Adsorption) terminate when a
//     vertex's accumulated change falls below the algorithm's Threshold θ.
//     Which deltas get dropped depends on scheduling, so engines legitimately
//     disagree with each other and with the exact fixed point. The dropped
//     mass per activation is at most θ; cascading it through the linear
//     fixed-point operator (spectral radius ≤ α for PageRank's column-
//     stochastic transition and for inbound-normalized Adsorption) bounds
//     the per-vertex error by roughly n·θ·α/(1-α). BSP engines (Ligra,
//     Graphicionado) finalize sub-threshold deltas once per iteration rather
//     than once per convergence, so the harness applies a small safety
//     factor on top of the analytic bound.
//
// Comparisons against the reference oracles use the same budget: the
// oracles iterate to a 1e-12 total-change tolerance, which is negligible
// against the engine bound.

// toleranceSafety absorbs the iteration-count dependence of BSP residual
// dropping (see the policy comment above).
const toleranceSafety = 8

// Tolerance returns the maximum acceptable per-vertex absolute difference
// when comparing converged values for alg on g. 0 means exact agreement is
// required.
func Tolerance(alg algorithms.Algorithm, g *graph.CSR) float64 {
	n := float64(g.NumVertices())
	switch a := alg.(type) {
	case *algorithms.PageRankDelta:
		return toleranceSafety * n * a.Threshold * a.Alpha / (1 - a.Alpha)
	case *algorithms.Adsorption:
		return toleranceSafety * n * a.Threshold * a.Alpha / (1 - a.Alpha)
	}
	return 0
}

// CompareValues checks got against want element-wise within tol, treating
// same-signed infinities as equal and requiring exact equality when tol is
// 0. It returns an error naming the first few mismatching vertices.
func CompareValues(label string, got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: got %d values, want %d", label, len(got), len(want))
	}
	bad := 0
	var first string
	for v := range want {
		a, b := got[v], want[v]
		if a == b ||
			(math.IsInf(a, 1) && math.IsInf(b, 1)) ||
			(math.IsInf(a, -1) && math.IsInf(b, -1)) ||
			(math.IsNaN(a) && math.IsNaN(b)) {
			continue
		}
		if math.Abs(a-b) > tol {
			if bad == 0 {
				first = fmt.Sprintf("vertex %d = %g, want %g (tol %g)", v, a, b, tol)
			}
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%s: %d/%d mismatches; first: %s", label, bad, len(want), first)
	}
	return nil
}
