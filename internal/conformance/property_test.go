package conformance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/core"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// randomGraph draws one of the four random topology families used by the
// property tests; all are weighted so weight-sensitive algorithms get real
// inputs.
func randomGraph(shape uint8, seed int64, rng *rand.Rand) (*graph.CSR, error) {
	switch shape % 4 {
	case 0:
		return gen.ErdosRenyi(rng.Intn(300)+2, rng.Intn(1500), true, seed)
	case 1:
		return gen.RMAT(gen.RMATParams{
			A: 0.57, B: 0.19, C: 0.19, D: 0.05,
			Scale: rng.Intn(5) + 4, EdgeFactor: rng.Intn(8) + 1,
			Weighted: true, Seed: seed,
		})
	case 2:
		return gen.Grid2D(rng.Intn(12)+2, rng.Intn(12)+2, true, seed)
	default:
		return gen.Chain(rng.Intn(200)+2, true)
	}
}

// randomMonotone picks one of the monotone (exact-agreement) algorithms.
func randomMonotone(algPick uint8, root graph.VertexID) func() algorithms.Algorithm {
	switch algPick % 5 {
	case 0:
		return func() algorithms.Algorithm { return algorithms.NewSSSP(root) }
	case 1:
		return func() algorithms.Algorithm { return algorithms.NewBFS(root) }
	case 2:
		return func() algorithms.Algorithm { return algorithms.NewConnectedComponents() }
	case 3:
		return func() algorithms.Algorithm { return algorithms.NewSSWP(root) }
	default:
		return func() algorithms.Algorithm { return algorithms.NewReach(root) }
	}
}

// randomConfig randomizes the architecture knobs that must never change
// results: baseline vs optimized design, forced slicing, bin geometry,
// scheduling policy, and generation-pipeline depth.
func randomConfig(knob uint8, n int) core.Config {
	cfg := core.OptimizedConfig()
	cfg.MaxCycles = 500_000_000
	switch knob % 6 {
	case 1:
		cfg = core.BaselineConfig()
		cfg.MaxCycles = 500_000_000
	case 2:
		cfg.QueueCapacity = n/2 + 1 // force slicing
	case 3:
		cfg.NumBins = 8
		cfg.BinCols = 2
	case 4:
		cfg.Schedule = core.ScheduleDensestFirst
	case 5:
		cfg.StreamsPerProcessor = 1
		cfg.GenQueueDepth = 1
	}
	return cfg
}

// TestPropertyAcceleratorEqualsOracle drives the full accelerator on
// randomly generated graphs with randomly chosen monotone algorithms and
// random configuration knobs, and requires exact agreement with the
// reference worklist solver every time (plus the event-conservation balance
// applied by runAccelerator). This is the repository's strongest single
// correctness property: any scheduling, coalescing, routing, or slicing bug
// that affects results will eventually surface here.
func TestPropertyAcceleratorEqualsOracle(t *testing.T) {
	f := func(seed int64, shape, algPick, knob uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := randomGraph(shape, seed, rng)
		if err != nil {
			t.Log(err)
			return false
		}
		root := graph.VertexID(rng.Intn(g.NumVertices()))
		mk := randomMonotone(algPick, root)
		cfg := randomConfig(knob, g.NumVertices())
		e := EngineAccelerator(cfg)
		if err := VerifyEngine(e, g, mk); err != nil {
			t.Logf("seed=%d shape=%d alg=%d knob=%d: %v", seed, shape%4, algPick%5, knob%6, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAllEnginesAgree extends the property to the full engine set
// (solver, accelerator, Graphicionado, Ligra) with the default conformance
// configurations, on a smaller case budget since each case runs every
// engine.
func TestPropertyAllEnginesAgree(t *testing.T) {
	f := func(seed int64, shape, algPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := randomGraph(shape, seed, rng)
		if err != nil {
			t.Log(err)
			return false
		}
		root := graph.VertexID(rng.Intn(g.NumVertices()))
		mk := randomMonotone(algPick, root)
		if err := Verify(g, mk, Options{}); err != nil {
			t.Logf("seed=%d shape=%d alg=%d: %v", seed, shape%4, algPick%5, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
