package conformance

import (
	"fmt"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// Shape is one graph topology in the conformance matrix. The set spans the
// regimes that stress different engine machinery: power-law skew (R-MAT)
// for coalescing, uniform randomness for routing, grids/chains for deep
// dependence (many rounds, worst-case lookahead), and a star for extreme
// hub reactivation.
type Shape struct {
	Name string
	// Build generates the graph deterministically from seed.
	Build func(seed int64) (*graph.CSR, error)
}

// Shapes returns the standard conformance topologies, sized so the full
// shapes × algorithms × engines matrix stays fast enough for every CI run.
func Shapes() []Shape {
	return []Shape{
		{Name: "rmat", Build: func(seed int64) (*graph.CSR, error) {
			return gen.RMAT(gen.RMATParams{
				A: 0.57, B: 0.19, C: 0.19, D: 0.05,
				Scale: 8, EdgeFactor: 4, Weighted: true, Seed: seed,
			})
		}},
		{Name: "erdos-renyi", Build: func(seed int64) (*graph.CSR, error) {
			return gen.ErdosRenyi(220, 900, true, seed)
		}},
		{Name: "grid", Build: func(seed int64) (*graph.CSR, error) {
			return gen.Grid2D(9, 7, true, seed)
		}},
		{Name: "chain", Build: func(seed int64) (*graph.CSR, error) {
			return gen.Chain(60, true)
		}},
		{Name: "star", Build: func(seed int64) (*graph.CSR, error) {
			return gen.Star(40)
		}},
	}
}

// AlgCase describes one algorithm in the conformance matrix.
type AlgCase struct {
	Name string
	// New builds a fresh instance rooted at root (ignored by rootless
	// algorithms).
	New func(root graph.VertexID) algorithms.Algorithm
	// Prepare derives the graph variant the algorithm is defined on (e.g.
	// Adsorption requires inbound-normalized weights, Section VI-A); nil
	// means the graph is used as-is.
	Prepare func(g *graph.CSR) *graph.CSR
	// Incremental reports whether the algorithm supports SeedInsertions.
	Incremental bool
}

// conformanceThreshold tightens the sum-based algorithms' propagation
// threshold for conformance runs: the Tolerance bound scales with θ, so a
// small θ keeps the required agreement meaningfully tight.
const conformanceThreshold = 1e-7

// Algorithms returns the standard conformance algorithm set — the five
// Table II applications plus the two extensions.
func Algorithms() []AlgCase {
	return []AlgCase{
		{
			Name: "pagerank-delta",
			New: func(graph.VertexID) algorithms.Algorithm {
				pr := algorithms.NewPageRankDelta()
				pr.Threshold = conformanceThreshold
				return pr
			},
			Incremental: true,
		},
		{
			Name: "adsorption",
			New: func(graph.VertexID) algorithms.Algorithm {
				ad := algorithms.NewAdsorption()
				ad.Threshold = conformanceThreshold
				return ad
			},
			Prepare: func(g *graph.CSR) *graph.CSR { return g.NormalizeInbound() },
		},
		{
			Name:        "sssp",
			New:         func(root graph.VertexID) algorithms.Algorithm { return algorithms.NewSSSP(root) },
			Incremental: true,
		},
		{
			Name:        "bfs",
			New:         func(root graph.VertexID) algorithms.Algorithm { return algorithms.NewBFS(root) },
			Incremental: true,
		},
		{
			Name:        "reach",
			New:         func(root graph.VertexID) algorithms.Algorithm { return algorithms.NewReach(root) },
			Incremental: true,
		},
		{
			Name: "connected-components",
			New: func(graph.VertexID) algorithms.Algorithm {
				return algorithms.NewConnectedComponents()
			},
			Incremental: true,
		},
		{
			Name:        "sswp",
			New:         func(root graph.VertexID) algorithms.Algorithm { return algorithms.NewSSWP(root) },
			Incremental: true,
		},
		{
			Name:        "reliable-path",
			New:         func(root graph.VertexID) algorithms.Algorithm { return algorithms.NewReliablePath(root) },
			Incremental: true,
		},
	}
}

// AlgCaseByName returns the registered case with the given name.
func AlgCaseByName(name string) (AlgCase, error) {
	for _, c := range Algorithms() {
		if c.Name == name {
			return c, nil
		}
	}
	return AlgCase{}, fmt.Errorf("conformance: unknown algorithm %q", name)
}

// BestRoot returns the max-out-degree vertex — the standard root choice so
// source-rooted algorithms get nontrivial traversals on shuffled graphs.
func BestRoot(g *graph.CSR) graph.VertexID {
	best, deg := graph.VertexID(0), -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > deg {
			best, deg = graph.VertexID(v), d
		}
	}
	return best
}

// Prepared returns the graph variant c runs on.
func (c AlgCase) Prepared(g *graph.CSR) *graph.CSR {
	if c.Prepare == nil {
		return g
	}
	return c.Prepare(g)
}

// Maker returns a fresh-algorithm factory bound to (c, root).
func (c AlgCase) Maker(root graph.VertexID) func() algorithms.Algorithm {
	return func() algorithms.Algorithm { return c.New(root) }
}
