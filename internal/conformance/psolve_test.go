package conformance

import (
	"fmt"
	"testing"

	"graphpulse/internal/algorithms"
)

// TestPSolveMatchesSolveMatrix is the parallel-solver acceptance gate:
// every registered shape × every registered algorithm, psolve against the
// serial golden model under the repository tolerance policy — exact
// (tolerance zero) for the monotone algorithms, threshold-residue band for
// the sum-based ones. CI runs this suite under -race at GOMAXPROCS 1, 2,
// and 8.
func TestPSolveMatchesSolveMatrix(t *testing.T) {
	for _, shape := range Shapes() {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			t.Parallel()
			g, err := shape.Build(int64(len(shape.Name)) * 6151)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range Algorithms() {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					t.Parallel()
					prepared := c.Prepared(g)
					root := BestRoot(prepared)
					mk := c.Maker(root)
					want := algorithms.Solve(prepared, mk()).Values
					tol := Tolerance(mk(), prepared)
					e := EnginePSolve(PSolveConfig())
					got, err := e.Run(prepared, mk)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s vs solve on %s/%s", e.Name, shape.Name, c.Name)
					if err := CompareValues(label, got, want, tol); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// TestPSolveWorkerCountInvariance sweeps the shard count across every
// shape for a representative monotone and a representative sum-based
// algorithm: the worker count is a scheduling knob and must never change
// the fixed point.
func TestPSolveWorkerCountInvariance(t *testing.T) {
	for _, shape := range Shapes() {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			t.Parallel()
			g, err := shape.Build(int64(len(shape.Name)) * 3571)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"sssp", "pagerank-delta"} {
				c, err := AlgCaseByName(name)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyWorkerCountInvariance(g, c, nil); err != nil {
					t.Error(err)
				}
			}
		})
	}
}
