package conformance

import (
	"math/rand"
	"testing"

	"graphpulse/internal/graph"
)

// metamorphicShapes trims the shape set for the metamorphic suites, which
// run several engine executions per (shape, algorithm) pair.
func metamorphicShapes(t *testing.T) []Shape {
	t.Helper()
	all := Shapes()
	return []Shape{all[0], all[2], all[3]} // rmat, grid, chain
}

func TestMetamorphicRelabelInvariance(t *testing.T) {
	for _, shape := range metamorphicShapes(t) {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			t.Parallel()
			g, err := shape.Build(23)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range Algorithms() {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					t.Parallel()
					if err := VerifyRelabelInvariance(g, c, 97); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

func TestMetamorphicTransposeConsistency(t *testing.T) {
	for _, shape := range metamorphicShapes(t) {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			t.Parallel()
			g, err := shape.Build(29)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range Algorithms() {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					t.Parallel()
					if err := VerifyTransposeConsistency(g, c); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

func TestMetamorphicPartitionInvariance(t *testing.T) {
	for _, shape := range metamorphicShapes(t) {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			t.Parallel()
			g, err := shape.Build(31)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range Algorithms() {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					t.Parallel()
					if err := VerifyPartitionInvariance(g, c); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// randomInsertions draws edge insertions whose endpoints already exist in g,
// weighted uniformly in (0, 1].
func randomInsertions(g *graph.CSR, count int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	edges := make([]graph.Edge, 0, count)
	for i := 0; i < count; i++ {
		edges = append(edges, graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: float32(rng.Intn(100)+1) / 100,
		})
	}
	return edges
}

func TestMetamorphicIncrementalEquivalence(t *testing.T) {
	for _, shape := range metamorphicShapes(t) {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			t.Parallel()
			g, err := shape.Build(37)
			if err != nil {
				t.Fatal(err)
			}
			added := randomInsertions(g, 8, 41)
			for _, c := range Algorithms() {
				c := c
				if !c.Incremental {
					continue
				}
				t.Run(c.Name, func(t *testing.T) {
					t.Parallel()
					if err := VerifyIncremental(g, c, added); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}
