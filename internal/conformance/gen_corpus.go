//go:build ignore

// gen_corpus regenerates the seed corpora under testdata/fuzz/. Run from
// this directory:
//
//	go run gen_corpus.go
//
// Each seed decodes (via fuzzGraph in fuzz_test.go) to a deliberately shaped
// instance: chains and stars for deep/hub-heavy propagation, denser mixes
// for coalescing, and every algorithm selector so plain `go test` exercises
// all algorithms through the fuzz path too.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
)

// seed mirrors fuzz_test.go's layout: n-selector, algorithm selector, root
// selector, weighted flag, then (src, dst, weight) triples.
func seed(nSel, alg, root, weighted byte, triples ...byte) []byte {
	return append([]byte{nSel, alg, root, weighted}, triples...)
}

// binContainer assembles a raw binary-container prefix (little-endian
// uint64 header words followed by uint64 payload words) for the
// malformed-input seeds of FuzzGraphIORoundTrip.
func binContainer(words ...uint64) []byte {
	var out []byte
	for _, w := range words {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w)
		out = append(out, b[:]...)
	}
	return out
}

func chainPayload(n byte) []byte {
	var p []byte
	for i := byte(0); i+1 < n; i++ {
		p = append(p, i, i+1, 37+i)
	}
	return p
}

func starPayload(n byte) []byte {
	var p []byte
	for i := byte(1); i < n; i++ {
		p = append(p, 0, i, 11+i)
	}
	return p
}

func densePayload(n byte, edges int) []byte {
	var p []byte
	x := byte(7)
	for i := 0; i < edges; i++ {
		// A small LCG keeps the payload deterministic without imports.
		x = x*31 + 17
		p = append(p, x%n, (x/3)%n, x)
	}
	return p
}

func main() {
	corpora := map[string][][]byte{}

	// Engine agreement: every algorithm selector on at least one shape, plus
	// shape variety on a couple of selectors.
	var ea [][]byte
	for alg := byte(0); alg < 8; alg++ {
		ea = append(ea, seed(14, alg, 0, 1, chainPayload(16)...))
	}
	ea = append(ea,
		seed(10, 0, 0, 1, starPayload(12)...),
		seed(30, 2, 5, 1, densePayload(32, 96)...),
		seed(6, 3, 1, 0, densePayload(8, 20)...),
		seed(0, 5, 0, 1, 0, 1, 50, 1, 0, 60), // 2-vertex multigraph with a cycle
	)
	corpora["FuzzEngineAgreement"] = ea

	// IO round-trip: weighted/unweighted, self loops, duplicates, isolated
	// trailing vertices (n larger than any endpoint), empty payloads —
	// followed by raw malformed binary containers for the loader-hardening
	// preamble (the target feeds the undecoded bytes to ReadBinary and
	// ReadEdgeList before the structured round-trip).
	corpora["FuzzGraphIORoundTrip"] = [][]byte{
		seed(14, 0, 0, 1, chainPayload(16)...),
		seed(14, 0, 0, 0, chainPayload(16)...),
		seed(40, 0, 0, 1, densePayload(42, 64)...),
		seed(8, 0, 0, 1, 3, 3, 99, 3, 3, 99, 0, 9, 1), // self loops + duplicate edges
		seed(60, 0, 0, 1, 0, 1, 50),                   // one edge, many isolated vertices
		seed(4, 0, 0, 0),                              // no edges at all
		binContainer(0x47504353, 0, 1<<62, 0),         // vertex count overflows int
		binContainer(0x47504353, 0, 2, 1<<62),         // edge count overflows int
		binContainer(0x47504353, 2, 1, 0, 0, 0),       // unknown flag bit
		binContainer(0x47504353, 0, 1<<20, 1<<20),     // huge counts, empty payload
		binContainer(0x47504353, 0, 2, 1, 0, 1, 0),    // non-monotone RowPtr (truncated Dst)
		binContainer(0xdeadbeef, 0, 1, 0),             // wrong magic
	}

	// Incremental insert: the incremental algorithm selectors (adsorption,
	// selector 1, is skipped by the target) on chains, stars, and dense
	// mixes so the split base/batch both stay interesting.
	corpora["FuzzIncrementalInsert"] = [][]byte{
		seed(14, 0, 0, 1, chainPayload(16)...),
		seed(14, 2, 0, 1, chainPayload(16)...),
		seed(10, 3, 0, 1, starPayload(12)...),
		seed(20, 5, 0, 1, densePayload(22, 60)...),
		seed(12, 6, 2, 1, densePayload(14, 40)...),
		seed(12, 7, 2, 1, densePayload(14, 40)...),
	}

	// Mutation sequences: FuzzMutateSequence's layout prepends a base-edge
	// count selector, then reads op quads (kind, a, b, c). The seeds cover
	// every incremental algorithm selector with interleaved inserts,
	// deletes (of inserted and of base edges), and window expirations.
	mutSeed := func(nSel, alg, root, weighted, kSel byte, rest ...byte) []byte {
		return append([]byte{nSel, alg, root, weighted, kSel}, rest...)
	}
	ops := func(quads ...byte) []byte { return quads }
	chain10 := chainPayload(10) // 9 triples on a 10-vertex chain (nSel 8)
	corpora["FuzzMutateSequence"] = [][]byte{
		// PageRank on a chain: insert a shortcut, delete it, expire the rest.
		mutSeed(8, 0, 0, 1, 9, append(chain10, ops(
			0, 0, 7, 40, // insert 0->7
			0, 7, 2, 30, // insert 7->2 (cycle)
			2, 0, 7, 0, // delete 0->7
			3, 0, 0, 5, // expire, 6s horizon
		)...)...),
		// SSSP: delete base chain edges so the cone re-routes, then rebuild.
		mutSeed(8, 2, 0, 1, 9, append(chain10, ops(
			2, 4, 5, 0, // delete base 4->5 (downstream unreachable)
			0, 4, 5, 90, // re-insert it, heavier
			0, 0, 9, 10, // cheap shortcut to the tail
			2, 0, 9, 0, // and take it away again
		)...)...),
		// BFS on a star: hub edge churn.
		mutSeed(8, 3, 0, 1, 9, append(starPayload(10), ops(
			2, 0, 3, 0,
			0, 1, 3, 20,
			3, 0, 0, 2,
		)...)...),
		// Connected components: merge and split label floods.
		mutSeed(10, 5, 0, 0, 6, append(densePayload(12, 6), ops(
			0, 11, 0, 50,
			2, 11, 0, 0,
			0, 1, 11, 50,
			3, 0, 0, 1,
		)...)...),
		// Reach: delete the only bridge (the fabricated-reachability trap).
		mutSeed(4, 4, 0, 0, 2, 0, 1, 10, 1, 2, 10, // 0->1->2
			2, 0, 1, 0, // delete the bridge
			0, 0, 1, 10, // restore it
			3, 0, 0, 1), // expire the restored copy
		// Empty base, insert-only growth.
		mutSeed(6, 2, 0, 1, 0,
			0, 0, 1, 30,
			0, 1, 2, 30,
			0, 2, 3, 30),
	}

	for target, seeds := range corpora {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, s := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%s: %d seeds\n", target, len(seeds))
	}
}
