package conformance

import (
	"sync"
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/core"
	"graphpulse/internal/graph"
)

// TestEngineAgreementMatrix is the headline suite: every registered shape ×
// every registered algorithm, through all five engines (reference oracle,
// worklist solver, accelerator, Graphicionado, Ligra), with the event-
// conservation and algebraic-law invariants applied along the way.
func TestEngineAgreementMatrix(t *testing.T) {
	for _, shape := range Shapes() {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			t.Parallel()
			g, err := shape.Build(int64(len(shape.Name)) * 7919)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range Algorithms() {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					t.Parallel()
					prepared := c.Prepared(g)
					if err := Verify(prepared, c.Maker(BestRoot(prepared)), Options{}); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// TestAcceleratorDeterminism requires bit-identical results — values, cycle
// count, event and memory counters — across repeated runs of the same
// build, for both the optimized and baseline configurations.
func TestAcceleratorDeterminism(t *testing.T) {
	g, err := Shapes()[0].Build(11)
	if err != nil {
		t.Fatal(err)
	}
	base := core.BaselineConfig()
	base.MaxCycles = 1_000_000_000
	for _, cfg := range []core.Config{AcceleratorConfig(), base} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			for _, c := range []string{"sssp", "pagerank-delta"} {
				ac, err := AlgCaseByName(c)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyDeterminism(cfg, g, ac.Maker(BestRoot(g)), 3); err != nil {
					t.Errorf("%s: %v", c, err)
				}
			}
		})
	}
}

// TestAcceleratorDeterminismUnderConcurrency runs several identical
// accelerators concurrently (as the parallel sweep runner and `go test
// -parallel` do) and requires them all to produce the same bits as a run
// executed alone — shared mutable state between instances would show here
// (and under CI's -race).
func TestAcceleratorDeterminismUnderConcurrency(t *testing.T) {
	g, err := Shapes()[1].Build(13)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := AlgCaseByName("connected-components")
	if err != nil {
		t.Fatal(err)
	}
	mk := ac.Maker(BestRoot(g))
	alone, err := runAccelerator(AcceleratorConfig(), g, mk())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]*core.Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = runAccelerator(AcceleratorConfig(), g, mk())
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if err := sameResult(alone, results[i]); err != nil {
			t.Errorf("worker %d diverged from solo run: %v", i, err)
		}
	}
}

// TestConservationRejectsImbalance checks that the conservation checker
// actually detects corrupted accounting, so a future counter refactor can't
// neuter the invariant silently.
func TestConservationRejectsImbalance(t *testing.T) {
	g, err := Shapes()[3].Build(1)
	if err != nil {
		t.Fatal(err)
	}
	ac, _ := AlgCaseByName("bfs")
	alg := ac.Maker(BestRoot(g))()
	a, err := core.New(AcceleratorConfig(), g, alg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	initial := len(alg.InitialEvents(g))
	if err := CheckConservation(res, initial); err != nil {
		t.Fatalf("clean run failed conservation: %v", err)
	}
	mutations := []func(r *core.Result){
		func(r *core.Result) { r.EventsEmitted++ },
		func(r *core.Result) { r.EventsProcessed-- },
		func(r *core.Result) { r.RoundLog[0].Produced++ },
		func(r *core.Result) { r.RoundLog[len(r.RoundLog)-1].Remaining = 5 },
	}
	for i, mut := range mutations {
		broken := *res
		broken.RoundLog = append([]core.RoundStats(nil), res.RoundLog...)
		mut(&broken)
		if err := CheckConservation(&broken, initial); err == nil {
			t.Errorf("mutation %d passed conservation", i)
		}
	}
}

// TestToleranceExactForMonotone pins the tolerance policy: monotone
// algorithms must be compared exactly; sum-based algorithms must get a
// strictly positive bound that scales with the threshold.
func TestToleranceExactForMonotone(t *testing.T) {
	g, err := Shapes()[3].Build(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Algorithms() {
		alg := c.New(0)
		tol := Tolerance(alg, g)
		switch c.Name {
		case "pagerank-delta", "adsorption":
			if tol <= 0 {
				t.Errorf("%s: tolerance %g, want > 0", c.Name, tol)
			}
		default:
			if tol != 0 {
				t.Errorf("%s: tolerance %g, want exact (0)", c.Name, tol)
			}
		}
	}
	pr := algorithms.NewPageRankDelta()
	loose := Tolerance(pr, g)
	pr.Threshold /= 10
	if tight := Tolerance(pr, g); tight >= loose {
		t.Errorf("tolerance did not tighten with threshold: %g -> %g", loose, tight)
	}
}

// TestCompareValues pins the comparator's edge cases.
func TestCompareValues(t *testing.T) {
	inf := algorithms.Infinity
	if err := CompareValues("t", []float64{1, inf, -inf}, []float64{1, inf, -inf}, 0); err != nil {
		t.Errorf("identical slices rejected: %v", err)
	}
	if err := CompareValues("t", []float64{inf}, []float64{-inf}, 0); err == nil {
		t.Error("opposite infinities accepted")
	}
	if err := CompareValues("t", []float64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := CompareValues("t", []float64{1.05}, []float64{1}, 0.1); err != nil {
		t.Errorf("in-tolerance difference rejected: %v", err)
	}
	if err := CompareValues("t", []float64{1.2}, []float64{1}, 0.1); err == nil {
		t.Error("out-of-tolerance difference accepted")
	}
}

// TestVerifyEngineReportsDivergence feeds VerifyEngine an engine that
// returns corrupted values and requires rejection — the harness must not
// vacuously pass.
func TestVerifyEngineReportsDivergence(t *testing.T) {
	g, err := Shapes()[3].Build(1)
	if err != nil {
		t.Fatal(err)
	}
	evil := Engine{
		Name: "evil",
		Run: func(g graph.Adjacency, mk func() algorithms.Algorithm) ([]float64, error) {
			vals := algorithms.Solve(g, mk()).Values
			vals[len(vals)/2] += 1
			return vals, nil
		},
	}
	ac, _ := AlgCaseByName("sssp")
	if err := VerifyEngine(evil, g, ac.Maker(0)); err == nil {
		t.Fatal("corrupted engine passed verification")
	}
}
