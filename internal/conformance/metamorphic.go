package conformance

import (
	"fmt"
	"math/rand"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/baseline/ligra"
	"graphpulse/internal/core"
	"graphpulse/internal/graph"
	"graphpulse/internal/stream"
)

// This file implements the metamorphic invariants: transformations of the
// input whose effect on the output is known exactly, so any engine can be
// cross-checked without an oracle for the transformed instance.

// VerifyRelabelInvariance checks that renaming vertices does not change the
// computation: running c on g relabeled by a random permutation must yield
// the permuted values (for label-independent algorithms) or a consistently
// permuted partition (for ConnectedComponents, whose values ARE labels).
// The relabeled run goes through the worklist solver, the parallel solver,
// and the accelerator — relabeling changes the queue's vertex→(bin,row,col)
// mapping, the accelerator's slice assignment, and psolve's shard
// boundaries, so this doubles as a scheduling-independence test.
func VerifyRelabelInvariance(g *graph.CSR, c AlgCase, seed int64) error {
	if c.Name == "connected-components" {
		// Max-label propagation on a directed graph assigns each vertex the
		// largest id among its ancestors, so the induced partition depends on
		// the numbering. On a symmetric graph the labels are genuine weakly-
		// connected components and the partition IS relabel-invariant.
		sym, err := symmetrize(g)
		if err != nil {
			return err
		}
		g = sym
	}
	prepared := c.Prepared(g)
	n := prepared.NumVertices()
	root := BestRoot(prepared)
	base := algorithms.Solve(prepared, c.Maker(root)())

	rng := rand.New(rand.NewSource(seed))
	perm := make([]graph.VertexID, n)
	for i, p := range rng.Perm(n) {
		perm[i] = graph.VertexID(p)
	}
	rg, err := prepared.Relabel(perm)
	if err != nil {
		return err
	}
	mk := c.Maker(perm[root])
	tol := 2 * Tolerance(mk(), prepared)

	for _, e := range []Engine{EngineSolve(), EnginePSolve(PSolveConfig()), EngineAccelerator(AcceleratorConfig())} {
		got, err := e.Run(rg, mk)
		if err != nil {
			return fmt.Errorf("relabel/%s: %w", e.Name, err)
		}
		if c.Name == "connected-components" {
			if err := samePartition(base.Values, got, perm); err != nil {
				return fmt.Errorf("relabel/%s on %s: %w", e.Name, c.Name, err)
			}
			continue
		}
		unperm := make([]float64, n)
		for v := 0; v < n; v++ {
			unperm[v] = got[perm[v]]
		}
		if err := CompareValues(fmt.Sprintf("relabel/%s on %s", e.Name, c.Name), unperm, base.Values, tol); err != nil {
			return err
		}
	}
	return nil
}

// symmetrize adds the reverse of every edge so label propagation reaches
// the whole weakly connected component.
func symmetrize(g *graph.CSR) (*graph.CSR, error) {
	edges := g.Edges()
	for _, e := range g.Edges() {
		edges = append(edges, graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	return graph.FromEdges(g.NumVertices(), edges, g.Weighted())
}

// samePartition checks that two labelings induce the same partition of the
// vertex set, where vertex v of the base graph is vertex perm[v] of the
// relabeled graph: the label mapping must be a bijection.
func samePartition(base, relabeled []float64, perm []graph.VertexID) error {
	fwd := make(map[float64]float64)
	rev := make(map[float64]float64)
	for v := range base {
		b, r := base[v], relabeled[perm[v]]
		if prev, ok := fwd[b]; ok && prev != r {
			return fmt.Errorf("component of label %g split (%g vs %g)", b, prev, r)
		}
		if prev, ok := rev[r]; ok && prev != b {
			return fmt.Errorf("components %g and %g merged into %g", prev, b, r)
		}
		fwd[b], rev[r] = r, b
	}
	return nil
}

// VerifyTransposeConsistency checks the CSR/CSC duality the pull-direction
// machinery relies on: double transposition is the identity (up to sorted
// adjacency), and Ligra's pull traversal (which consumes the transpose)
// agrees with its push traversal and with the worklist solver.
func VerifyTransposeConsistency(g *graph.CSR, c AlgCase) error {
	prepared := c.Prepared(g)
	tt := prepared.Transpose().Transpose()
	if !tt.Equal(prepared.SortNeighbors()) {
		return fmt.Errorf("transpose on %s: double transpose is not the identity", c.Name)
	}
	root := BestRoot(prepared)
	mk := c.Maker(root)
	want := algorithms.Solve(prepared, mk()).Values
	tol := 2 * Tolerance(mk(), prepared)
	for _, dir := range []ligra.Direction{ligra.PushOnly, ligra.PullOnly} {
		cfg := LigraConfig()
		cfg.Direction = dir
		got := ligra.New(cfg, prepared).Run(mk()).Values
		if err := CompareValues(fmt.Sprintf("transpose/ligra-dir%d on %s", dir, c.Name), got, want, tol); err != nil {
			return err
		}
	}
	return nil
}

// VerifyPartitionInvariance checks that slicing the graph (Section IV-F)
// never changes results: the accelerator run as one slice and as several
// slices must agree with each other and with the worklist solver.
func VerifyPartitionInvariance(g *graph.CSR, c AlgCase) error {
	prepared := c.Prepared(g)
	root := BestRoot(prepared)
	mk := c.Maker(root)
	tol := Tolerance(mk(), prepared)
	want := algorithms.Solve(prepared, mk()).Values

	one := AcceleratorConfig() // QueueCapacity 0: single slice
	many := AcceleratorConfig()
	many.QueueCapacity = prepared.NumVertices()/3 + 1 // forces ≥ 3 slices

	var values [][]float64
	for _, cfg := range []core.Config{one, many} {
		res, err := runAccelerator(cfg, prepared, mk())
		if err != nil {
			return fmt.Errorf("partition(%s cap=%d) on %s: %w", cfg.Name, cfg.QueueCapacity, c.Name, err)
		}
		if err := CompareValues(fmt.Sprintf("partition(cap=%d) vs solve on %s", cfg.QueueCapacity, c.Name),
			res.Values, want, tol); err != nil {
			return err
		}
		values = append(values, res.Values)
	}
	// Slice count must not even perturb the float summation order's result
	// beyond the tolerance; for monotone algorithms this is exact equality.
	return CompareValues(fmt.Sprintf("partition 1-slice vs N-slice on %s", c.Name), values[1], values[0], tol)
}

// VerifyWorkerCountInvariance is the psolve analogue of
// VerifyPartitionInvariance: the shard count is a scheduling knob, not a
// semantic one, so the parallel solver must agree with the serial worklist
// solver at every worker count — exactly, for the monotone algorithms
// (Tolerance 0), and within the threshold-residue band for the sum-based
// ones.
func VerifyWorkerCountInvariance(g *graph.CSR, c AlgCase, workerCounts []int) error {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 3, 8}
	}
	prepared := c.Prepared(g)
	root := BestRoot(prepared)
	mk := c.Maker(root)
	want := algorithms.Solve(prepared, mk()).Values
	tol := Tolerance(mk(), prepared)
	for _, w := range workerCounts {
		cfg := PSolveConfig()
		cfg.Workers = w
		e := EnginePSolve(cfg)
		got, err := e.Run(prepared, mk)
		if err != nil {
			return fmt.Errorf("workers/%s on %s: %w", e.Name, c.Name, err)
		}
		if err := CompareValues(fmt.Sprintf("%s vs solve on %s", e.Name, c.Name), got, want, tol); err != nil {
			return err
		}
	}
	return nil
}

// VerifyInsertDeleteNoop checks the streaming round-trip invariant:
// inserting a batch of edges and then deleting that same batch must land
// back on the never-mutated fixed point — the insertion-seeding warm
// start on the way in, the deletion-cone restart on the way out — for
// both the serial worklist solver and the sharded parallel solver. Batch
// edges whose (src, dst) pair already exists in the base graph (or
// repeats an earlier batch pair) are dropped first: deletion matches by
// pair, so such edges would legitimately take base edges with them and
// the round trip would not be a no-op.
func VerifyInsertDeleteNoop(base *graph.CSR, c AlgCase, batch []graph.Edge) error {
	prepared := c.Prepared(base)
	root := BestRoot(prepared)
	mk := c.Maker(root)
	batch = freshPairs(prepared, batch)
	if len(batch) == 0 {
		return nil
	}
	want := algorithms.Solve(prepared, mk()).Values
	// Two warm reconvergences plus the cold reference each carry their own
	// threshold residue for the sum-based algorithms.
	tol := 3 * Tolerance(mk(), prepared)
	for _, e := range []Engine{EngineSolve(), EnginePSolve(PSolveConfig())} {
		solve := func(g *graph.CSR, alg algorithms.Algorithm) ([]float64, error) {
			return e.Run(g, func() algorithms.Algorithm { return alg })
		}
		r := stream.NewReplayer(prepared, mk, solve, 1)
		if err := r.Apply(batch, nil, time.Unix(1, 0)); err != nil {
			return fmt.Errorf("insert-delete/%s on %s: insert: %w", e.Name, c.Name, err)
		}
		if err := r.Apply(nil, batch, time.Unix(2, 0)); err != nil {
			return fmt.Errorf("insert-delete/%s on %s: delete: %w", e.Name, c.Name, err)
		}
		got, err := r.State()
		if err != nil {
			return fmt.Errorf("insert-delete/%s on %s: %w", e.Name, c.Name, err)
		}
		if err := CompareValues(fmt.Sprintf("insert-delete/%s vs never-mutated on %s", e.Name, c.Name), got, want, tol); err != nil {
			return err
		}
	}
	return nil
}

// freshPairs filters batch down to in-range edges whose (src, dst) pair
// neither exists in g nor repeats within the batch.
func freshPairs(g *graph.CSR, batch []graph.Edge) []graph.Edge {
	type pair struct{ s, d graph.VertexID }
	n := g.NumVertices()
	seen := make(map[pair]bool, g.NumEdges()+len(batch))
	for _, e := range g.Edges() {
		seen[pair{e.Src, e.Dst}] = true
	}
	var out []graph.Edge
	for _, e := range batch {
		p := pair{e.Src, e.Dst}
		if int(e.Src) >= n || int(e.Dst) >= n || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, e)
	}
	return out
}

// VerifyIncremental checks the streaming-update path: converging on a base
// graph, applying edge insertions through IncrementalAfterInsert/WarmStart,
// and cascading must land on the same fixed point as a cold start on the
// updated graph — on the worklist solver and on the accelerator.
func VerifyIncremental(base *graph.CSR, c AlgCase, added []graph.Edge) error {
	root := BestRoot(base)
	mk := c.Maker(root)
	state := algorithms.Solve(base, mk()).Values
	newG, warm, err := algorithms.IncrementalAfterInsert(mk(), base, added, state)
	if err != nil {
		return fmt.Errorf("incremental on %s: %w", c.Name, err)
	}
	cold := algorithms.Solve(newG, mk()).Values
	// Both the warm and cold runs carry their own threshold residue.
	tol := 2 * Tolerance(mk(), newG)
	mkWarm := func() algorithms.Algorithm { return warm }
	for _, e := range []Engine{EngineSolve(), EngineAccelerator(AcceleratorConfig())} {
		got, err := e.Run(newG, mkWarm)
		if err != nil {
			return fmt.Errorf("incremental/%s on %s: %w", e.Name, c.Name, err)
		}
		if err := CompareValues(fmt.Sprintf("incremental/%s vs cold on %s", e.Name, c.Name), got, cold, tol); err != nil {
			return err
		}
	}
	return nil
}
