package conformance

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/ooc"
	"graphpulse/internal/stream"
)

// The fuzz targets decode arbitrary byte strings into small (graph,
// algorithm) instances and re-run the differential harness on them, letting
// the native fuzzer search for engine divergence instead of relying on the
// fixed conformance matrix. Seed corpora live under testdata/fuzz/ and are
// exercised by every plain `go test` run.
//
// Byte layout (shared by the targets):
//
//	data[0]  vertex count selector (n = 2 + data[0]%62)
//	data[1]  algorithm selector (index into Algorithms())
//	data[2]  root selector (root = data[2]%n)
//	data[3]  bit 0: weighted
//	data[4:] edge triples (src%n, dst%n, weight byte), capped at 4n edges
func fuzzGraph(data []byte) (*graph.CSR, AlgCase, graph.VertexID, bool) {
	if len(data) < 4 {
		return nil, AlgCase{}, 0, false
	}
	n := 2 + int(data[0]%62)
	algs := Algorithms()
	c := algs[int(data[1])%len(algs)]
	root := graph.VertexID(int(data[2]) % n)
	weighted := data[3]&1 == 1
	payload := data[4:]
	var edges []graph.Edge
	for i := 0; i+2 < len(payload) && len(edges) < 4*n; i += 3 {
		edges = append(edges, graph.Edge{
			Src:    graph.VertexID(int(payload[i]) % n),
			Dst:    graph.VertexID(int(payload[i+1]) % n),
			Weight: float32(int(payload[i+2])%100+1) / 100,
		})
	}
	if len(edges) == 0 {
		// A weighted graph with no edges does not round-trip its weighted
		// flag through the text format; normalize so every decoded instance
		// is a fixed point of encode∘decode.
		weighted = false
	}
	g, err := graph.FromEdges(n, edges, weighted)
	if err != nil {
		return nil, AlgCase{}, 0, false
	}
	return g, c, root, true
}

// FuzzEngineAgreement decodes a (graph, algorithm, root) instance and runs
// the full differential harness: all engines vs the reference oracle, event
// conservation, and the algebraic laws.
func FuzzEngineAgreement(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		g, c, root, ok := fuzzGraph(data)
		if !ok {
			t.Skip()
		}
		prepared := c.Prepared(g)
		if err := Verify(prepared, c.Maker(root), Options{}); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzGraphIORoundTrip checks that the text edge-list, binary CSR, and
// out-of-core graphpack codecs are lossless: write∘read must reproduce the
// graph bit-for-bit (weights included), for any decodable instance —
// including multigraphs, self loops, and trailing isolated vertices. It
// also drives the raw input bytes straight into all three loaders:
// whatever they decode to (usually an error), malformed input must never
// panic or demand an allocation sized by an unvalidated header. The seed
// corpus includes torn and truncated graphpack containers — cut inside the
// header, the slice directory, and a compressed segment — plus a
// flipped-byte directory, the shapes a crashed or half-shipped conversion
// leaves behind.
func FuzzGraphIORoundTrip(f *testing.F) {
	if seedG, err := graph.FromEdges(9, []graph.Edge{
		{Src: 0, Dst: 3, Weight: 1}, {Src: 3, Dst: 7, Weight: 0.5},
		{Src: 7, Dst: 0, Weight: 2}, {Src: 1, Dst: 8, Weight: 0.25},
		{Src: 8, Dst: 2, Weight: 4},
	}, true); err == nil {
		var pack bytes.Buffer
		if err := ooc.Write(&pack, seedG, ooc.WriteOptions{Slices: 3}); err == nil {
			full := pack.Bytes()
			f.Add(append([]byte(nil), full...))               // intact container
			f.Add(append([]byte(nil), full[:20]...))          // torn mid-header
			f.Add(append([]byte(nil), full[:len(full)/2]...)) // torn in the directory
			f.Add(append([]byte(nil), full[:len(full)-3]...)) // torn mid-segment
			flipped := append([]byte(nil), full...)
			flipped[48] ^= 0xff // corrupt a directory entry
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if g, err := graph.ReadBinary(bytes.NewReader(data)); err == nil {
			if err := g.Validate(); err != nil {
				t.Fatalf("ReadBinary accepted an invalid graph: %v", err)
			}
		}
		if g, err := graph.ReadEdgeList(bytes.NewReader(data), 0); err == nil {
			if err := g.Validate(); err != nil {
				t.Fatalf("ReadEdgeList accepted an invalid graph: %v", err)
			}
		}
		if st, err := ooc.OpenReaderAt(bytes.NewReader(data), int64(len(data)), 0); err == nil {
			if err := st.Validate(); err != nil {
				t.Fatalf("ooc.OpenReaderAt accepted an invalid store: %v", err)
			}
			st.Close()
		}
		g, _, _, ok := fuzzGraph(data)
		if !ok {
			t.Skip()
		}
		var text bytes.Buffer
		if err := graph.WriteEdgeList(&text, g); err != nil {
			t.Fatal(err)
		}
		fromText, err := graph.ReadEdgeList(&text, g.NumVertices())
		if err != nil {
			t.Fatalf("text round-trip: %v", err)
		}
		if !g.Equal(fromText) {
			t.Fatalf("text round-trip altered the graph (n=%d m=%d weighted=%v)",
				g.NumVertices(), g.NumEdges(), g.Weighted())
		}
		var bin bytes.Buffer
		if err := graph.WriteBinary(&bin, g); err != nil {
			t.Fatal(err)
		}
		fromBin, err := graph.ReadBinary(&bin)
		if err != nil {
			t.Fatalf("binary round-trip: %v", err)
		}
		if !g.Equal(fromBin) {
			t.Fatalf("binary round-trip altered the graph (n=%d m=%d weighted=%v)",
				g.NumVertices(), g.NumEdges(), g.Weighted())
		}
		// graphpack round-trip at a data-selected compression level and
		// slicing, compared against what the binary codec reproduced.
		level := int(data[3]>>1) % 3
		var pack bytes.Buffer
		if err := ooc.Write(&pack, g, ooc.WriteOptions{
			Level: level, RawLevel: level == ooc.LevelRaw, Slices: 1 + int(data[0])%4,
		}); err != nil {
			t.Fatalf("ooc.Write: %v", err)
		}
		st, err := ooc.OpenReaderAt(bytes.NewReader(pack.Bytes()), int64(pack.Len()), 0)
		if err != nil {
			t.Fatalf("graphpack round-trip (level %d): %v", level, err)
		}
		defer st.Close()
		fromPack := graph.Materialize(st)
		if !fromBin.Equal(fromPack) {
			t.Fatalf("graphpack round-trip (level %d) altered the graph (n=%d m=%d weighted=%v)",
				level, g.NumVertices(), g.NumEdges(), g.Weighted())
		}
	})
}

// FuzzMutateSequence decodes a small base graph plus a stream of mutation
// ops, replays them through stream.Replayer (the serving tier's warm-path
// selection), and requires the warm state to match a cold solve after
// EVERY epoch — and the whole sequence never to panic.
//
// Byte layout:
//
//	data[0]  vertex count selector (n = 2 + data[0]%14)
//	data[1]  algorithm selector (non-incremental algorithms are skipped)
//	data[2]  root selector (root = data[2]%n)
//	data[3]  bit 0: weighted
//	data[4]  base edge count selector (k = data[4]%16 triples)
//	data[5:5+3k] base edge triples (src%n, dst%n, weight byte)
//	rest     op quads (kind, a, b, c), capped at 12 ops:
//	           kind%4 ∈ {0,1} → insert edge (a%n, b%n, weight (c%100+1)/100)
//	           kind%4 == 2    → delete pair (a%n, b%n)
//	           kind%4 == 3    → expire with horizon (c%20+1) seconds
//
// Each op is applied as its own epoch at logical time Unix(opIndex+1, 0).
func FuzzMutateSequence(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			t.Skip()
		}
		n := 2 + int(data[0]%14)
		algs := Algorithms()
		c := algs[int(data[1])%len(algs)]
		if !c.Incremental {
			// Adsorption's convergence contract assumes inbound-normalized
			// weights, which arbitrary mutations do not preserve.
			t.Skip()
		}
		root := graph.VertexID(int(data[2]) % n)
		weighted := data[3]&1 == 1
		k := int(data[4] % 16)
		payload := data[5:]
		var edges []graph.Edge
		for i := 0; i+2 < len(payload) && len(edges) < k; i += 3 {
			edges = append(edges, graph.Edge{
				Src:    graph.VertexID(int(payload[i]) % n),
				Dst:    graph.VertexID(int(payload[i+1]) % n),
				Weight: float32(int(payload[i+2])%100+1) / 100,
			})
		}
		if len(edges) == 0 {
			weighted = false
		}
		ops := payload[3*len(edges):]
		base, err := graph.FromEdges(n, edges, weighted)
		if err != nil {
			t.Skip()
		}

		mk := c.Maker(root)
		tol := 2 * Tolerance(mk(), base)
		solve := func(g *graph.CSR, alg algorithms.Algorithm) ([]float64, error) {
			return algorithms.Solve(g, alg).Values, nil
		}
		r := stream.NewReplayer(base, mk, solve, stream.DefaultMaxConeFraction)
		for i := 0; i+3 < len(ops) && i/4 < 12; i += 4 {
			kind, a, b, w := ops[i], ops[i+1], ops[i+2], ops[i+3]
			at := time.Unix(int64(i/4)+1, 0)
			switch kind % 4 {
			case 0, 1:
				err = r.Apply([]graph.Edge{{
					Src:    graph.VertexID(int(a) % n),
					Dst:    graph.VertexID(int(b) % n),
					Weight: float32(int(w)%100+1) / 100,
				}}, nil, at)
			case 2:
				err = r.Apply(nil, []graph.Edge{{
					Src: graph.VertexID(int(a) % n),
					Dst: graph.VertexID(int(b) % n),
				}}, at)
			case 3:
				_, err = r.Expire(at, time.Duration(int(w)%20+1)*time.Second)
			}
			if err != nil {
				t.Fatalf("op %d (kind %d): %v", i/4, kind%4, err)
			}
			got, err := r.State()
			if err != nil {
				t.Fatal(err)
			}
			want := algorithms.Solve(r.Graph(), mk()).Values
			if err := CompareValues(
				fmt.Sprintf("mutate-sequence %s op %d (mode %s)", c.Name, i/4, r.LastMode),
				got, want, tol); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// FuzzIncrementalInsert splits the decoded edge set into a base graph and a
// batch of insertions, converges on the base, applies the batch through the
// incremental path, and requires the warm continuation to land on the cold-
// start fixed point (on the worklist solver and the accelerator).
func FuzzIncrementalInsert(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		g, c, _, ok := fuzzGraph(data)
		if !ok || !c.Incremental {
			t.Skip()
		}
		edges := g.Edges()
		if len(edges) < 2 {
			t.Skip()
		}
		split := len(edges) / 2
		base, err := graph.FromEdges(g.NumVertices(), edges[:split], g.Weighted())
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyIncremental(base, c, edges[split:]); err != nil {
			t.Fatal(err)
		}
	})
}
