package conformance

import (
	"bytes"
	"testing"

	"graphpulse/internal/graph"
)

// The fuzz targets decode arbitrary byte strings into small (graph,
// algorithm) instances and re-run the differential harness on them, letting
// the native fuzzer search for engine divergence instead of relying on the
// fixed conformance matrix. Seed corpora live under testdata/fuzz/ and are
// exercised by every plain `go test` run.
//
// Byte layout (shared by the targets):
//
//	data[0]  vertex count selector (n = 2 + data[0]%62)
//	data[1]  algorithm selector (index into Algorithms())
//	data[2]  root selector (root = data[2]%n)
//	data[3]  bit 0: weighted
//	data[4:] edge triples (src%n, dst%n, weight byte), capped at 4n edges
func fuzzGraph(data []byte) (*graph.CSR, AlgCase, graph.VertexID, bool) {
	if len(data) < 4 {
		return nil, AlgCase{}, 0, false
	}
	n := 2 + int(data[0]%62)
	algs := Algorithms()
	c := algs[int(data[1])%len(algs)]
	root := graph.VertexID(int(data[2]) % n)
	weighted := data[3]&1 == 1
	payload := data[4:]
	var edges []graph.Edge
	for i := 0; i+2 < len(payload) && len(edges) < 4*n; i += 3 {
		edges = append(edges, graph.Edge{
			Src:    graph.VertexID(int(payload[i]) % n),
			Dst:    graph.VertexID(int(payload[i+1]) % n),
			Weight: float32(int(payload[i+2])%100+1) / 100,
		})
	}
	if len(edges) == 0 {
		// A weighted graph with no edges does not round-trip its weighted
		// flag through the text format; normalize so every decoded instance
		// is a fixed point of encode∘decode.
		weighted = false
	}
	g, err := graph.FromEdges(n, edges, weighted)
	if err != nil {
		return nil, AlgCase{}, 0, false
	}
	return g, c, root, true
}

// FuzzEngineAgreement decodes a (graph, algorithm, root) instance and runs
// the full differential harness: all engines vs the reference oracle, event
// conservation, and the algebraic laws.
func FuzzEngineAgreement(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		g, c, root, ok := fuzzGraph(data)
		if !ok {
			t.Skip()
		}
		prepared := c.Prepared(g)
		if err := Verify(prepared, c.Maker(root), Options{}); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzGraphIORoundTrip checks that the text edge-list and binary CSR codecs
// are lossless: write∘read must reproduce the graph bit-for-bit (weights
// included), for any decodable instance — including multigraphs, self
// loops, and trailing isolated vertices. It also drives the raw input
// bytes straight into both loaders: whatever they decode to (usually an
// error), malformed input must never panic or demand an allocation sized
// by an unvalidated header.
func FuzzGraphIORoundTrip(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		if g, err := graph.ReadBinary(bytes.NewReader(data)); err == nil {
			if err := g.Validate(); err != nil {
				t.Fatalf("ReadBinary accepted an invalid graph: %v", err)
			}
		}
		if g, err := graph.ReadEdgeList(bytes.NewReader(data), 0); err == nil {
			if err := g.Validate(); err != nil {
				t.Fatalf("ReadEdgeList accepted an invalid graph: %v", err)
			}
		}
		g, _, _, ok := fuzzGraph(data)
		if !ok {
			t.Skip()
		}
		var text bytes.Buffer
		if err := graph.WriteEdgeList(&text, g); err != nil {
			t.Fatal(err)
		}
		fromText, err := graph.ReadEdgeList(&text, g.NumVertices())
		if err != nil {
			t.Fatalf("text round-trip: %v", err)
		}
		if !g.Equal(fromText) {
			t.Fatalf("text round-trip altered the graph (n=%d m=%d weighted=%v)",
				g.NumVertices(), g.NumEdges(), g.Weighted())
		}
		var bin bytes.Buffer
		if err := graph.WriteBinary(&bin, g); err != nil {
			t.Fatal(err)
		}
		fromBin, err := graph.ReadBinary(&bin)
		if err != nil {
			t.Fatalf("binary round-trip: %v", err)
		}
		if !g.Equal(fromBin) {
			t.Fatalf("binary round-trip altered the graph (n=%d m=%d weighted=%v)",
				g.NumVertices(), g.NumEdges(), g.Weighted())
		}
	})
}

// FuzzIncrementalInsert splits the decoded edge set into a base graph and a
// batch of insertions, converges on the base, applies the batch through the
// incremental path, and requires the warm continuation to land on the cold-
// start fixed point (on the worklist solver and the accelerator).
func FuzzIncrementalInsert(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		g, c, _, ok := fuzzGraph(data)
		if !ok || !c.Incremental {
			t.Skip()
		}
		edges := g.Edges()
		if len(edges) < 2 {
			t.Skip()
		}
		split := len(edges) / 2
		base, err := graph.FromEdges(g.NumVertices(), edges[:split], g.Weighted())
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyIncremental(base, c, edges[split:]); err != nil {
			t.Fatal(err)
		}
	})
}
