package ligra

// This file provides a first-order analytic timing model for the software
// baseline, so Figure 10 can be reproduced without depending on the wall
// clock of whatever host happens to run the benchmark (DESIGN.md §4). The
// model converts a run's classified memory operations (AccessStats) into
// seconds on a machine like the paper's 12-core Xeon E5 @ 2.2 GHz.
//
// The constants are deliberately coarse, first-principles numbers:
//
//   - sequential streams run at the machine's sustained bandwidth;
//   - random accesses cost DRAM latency divided by the memory-level
//     parallelism out-of-order cores extract;
//   - atomic updates to uncached lines are far slower — the paper cites a
//     CAS being "more than 15 times slower when data is in RAM vs in L1"
//     (Section II-A) — modeled as a fraction of them missing cache;
//   - each BSP iteration pays a parallel-barrier cost.
//
// The model is validated (loosely) against wall time in tests: it must land
// within an order of magnitude of the real host, and scale linearly in the
// operation counts.

// CPUModel holds the machine constants.
type CPUModel struct {
	// Cores is the number of worker cores (paper: 12).
	Cores int
	// SeqBandwidth is sustained streaming bandwidth, bytes/second.
	SeqBandwidth float64
	// RandomLatency is DRAM access latency in seconds.
	RandomLatency float64
	// MLP is the average memory-level parallelism per core for random
	// access streams.
	MLP float64
	// AtomicMissPenalty is the extra cost of a CAS on an uncached line.
	AtomicMissPenalty float64
	// AtomicMissRate is the fraction of atomics that miss the caches
	// (graph workloads have near-zero temporal locality, Section II-A).
	AtomicMissRate float64
	// BarrierCost is the per-iteration synchronization cost in seconds.
	BarrierCost float64
	// WordBytes is the payload size of one vertex/edge operation.
	WordBytes float64
}

// PaperXeon models the paper's software platform: a 12-core Intel Xeon
// E5-2470 class part with 4 DDR3 channels.
func PaperXeon() CPUModel {
	return CPUModel{
		Cores:             12,
		SeqBandwidth:      40e9,
		RandomLatency:     80e-9,
		MLP:               10,
		AtomicMissPenalty: 60e-9,
		AtomicMissRate:    0.5,
		BarrierCost:       5e-6,
		WordBytes:         8,
	}
}

// ModelSeconds estimates the run time of a measured execution on m.
// Sequential and random traffic are divided across cores (the frontier
// parallelizes); barriers are serial per iteration.
func ModelSeconds(res *Result, m CPUModel) float64 {
	if m.Cores < 1 {
		m.Cores = 1
	}
	a := res.Access
	seqBytes := float64(a.SequentialReads+a.SequentialWrites) * m.WordBytes
	seq := seqBytes / m.SeqBandwidth
	randOps := float64(a.RandomReads + a.RandomWrites)
	rand := randOps * m.RandomLatency / m.MLP / float64(m.Cores)
	atomics := float64(a.AtomicUpdates) * m.AtomicMissRate * m.AtomicMissPenalty / float64(m.Cores)
	barriers := float64(res.Iterations) * m.BarrierCost
	return seq + rand + atomics + barriers
}
