// Package ligra implements a Ligra-style shared-memory graph-processing
// framework (Shun & Blelloch, PPoPP'13) — the software baseline of the
// paper's evaluation. It provides the frontier (vertexSubset) + EdgeMap
// abstraction with direction-optimizing traversal: sparse frontiers push
// along out-edges with atomic (CAS) accumulation, dense frontiers pull
// along in-edges without atomics.
//
// The engine runs natively on the host (goroutines + atomics), so its
// timing is wall-clock, not simulated cycles. It also classifies its memory
// operations (random/sequential, atomic) to reproduce the paper's Table I
// access-pattern comparison.
//
// The same delta-accumulative Algorithm definitions drive this engine and
// the accelerator model, so converged values are directly comparable.
package ligra

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/sim"
)

// AccessStats counts memory operations by kind, matching the Table I
// classification of the Push and Pull models.
type AccessStats struct {
	RandomReads      int64
	RandomWrites     int64
	SequentialReads  int64
	SequentialWrites int64
	AtomicUpdates    int64
}

func (s *AccessStats) add(o *AccessStats) {
	s.RandomReads += o.RandomReads
	s.RandomWrites += o.RandomWrites
	s.SequentialReads += o.SequentialReads
	s.SequentialWrites += o.SequentialWrites
	s.AtomicUpdates += o.AtomicUpdates
}

// Config tunes the framework.
type Config struct {
	// Threads is the worker count (defaults to GOMAXPROCS). The paper's
	// software baseline is a 12-core Xeon.
	Threads int
	// DenseThreshold is Ligra's switch to pull traversal when the frontier
	// touches more than |E|/DenseThreshold edges (Ligra's default is 20).
	DenseThreshold int
	// Direction forces a traversal mode; Auto is Ligra's
	// direction-optimization.
	Direction Direction
	// MaxIterations bounds the BSP loop as a safety net.
	MaxIterations int
}

// Direction selects the traversal mode.
type Direction int

// Traversal modes.
const (
	Auto Direction = iota
	PushOnly
	PullOnly
)

// DefaultConfig mirrors Ligra's published defaults.
func DefaultConfig() Config {
	return Config{
		Threads:        runtime.GOMAXPROCS(0),
		DenseThreshold: 20,
		MaxIterations:  1_000_000,
	}
}

// Result is the outcome of a run.
type Result struct {
	Values     []float64
	Iterations int
	// VertexUpdates counts per-vertex delta applications across all
	// iterations (the frontier sizes summed) — the BSP analogue of the
	// worklist solver's activation count.
	VertexUpdates int64
	// EdgesTraversed counts edge relaxations across all iterations.
	EdgesTraversed int64
	// PushIterations/PullIterations count the direction decisions.
	PushIterations int
	PullIterations int
	Access         AccessStats
}

// Engine runs delta-accumulative algorithms under the BSP frontier model.
type Engine struct {
	cfg Config
	g   graph.Adjacency
	tr  *graph.CSR // transpose, built lazily for pull traversal
}

// New creates an engine over g.
func New(cfg Config, g graph.Adjacency) *Engine {
	if cfg.Threads < 1 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	if cfg.DenseThreshold < 1 {
		cfg.DenseThreshold = 20
	}
	if cfg.MaxIterations < 1 {
		cfg.MaxIterations = 1_000_000
	}
	return &Engine{cfg: cfg, g: g}
}

// transpose returns the cached reverse graph (pull direction needs it; the
// build cost is charged to setup, as in Ligra, which loads both directions).
func (e *Engine) transpose() *graph.CSR {
	if e.tr == nil {
		e.tr = graph.TransposeOf(e.g)
	}
	return e.tr
}

// accumulator is the per-vertex delta store. Values are IEEE-754 bit
// patterns so the push direction can CAS-combine without locks.
type accumulator struct {
	bits []uint64
	id   uint64
}

func newAccumulator(n int, identity float64) *accumulator {
	a := &accumulator{bits: make([]uint64, n), id: math.Float64bits(identity)}
	for i := range a.bits {
		a.bits[i] = a.id
	}
	return a
}

func (a *accumulator) get(v graph.VertexID) float64 {
	return math.Float64frombits(a.bits[v])
}

// take returns the accumulated delta and resets the cell (single-threaded
// phases only).
func (a *accumulator) take(v graph.VertexID) float64 {
	d := math.Float64frombits(a.bits[v])
	a.bits[v] = a.id
	return d
}

// reduceAtomic CAS-combines delta into cell v (the push direction's atomic
// update; "these updates must be performed via atomic operations").
func (a *accumulator) reduceAtomic(v graph.VertexID, delta float64, reduce func(x, y float64) float64) {
	for {
		cur := atomic.LoadUint64(&a.bits[v])
		next := math.Float64bits(reduce(math.Float64frombits(cur), delta))
		if next == cur || atomic.CompareAndSwapUint64(&a.bits[v], cur, next) {
			return
		}
	}
}

// reduceLocal combines without atomicity (pull direction: each destination
// is owned by exactly one worker).
func (a *accumulator) reduceLocal(v graph.VertexID, delta float64, reduce func(x, y float64) float64) {
	a.bits[v] = math.Float64bits(reduce(math.Float64frombits(a.bits[v]), delta))
}

// Run executes alg to convergence under the BSP model. Each iteration:
//  1. VertexMap over the frontier: apply accumulated deltas, keep changed
//     vertices (their applied delta is what propagates).
//  2. EdgeMap: push (sparse) or pull (dense) the deltas to neighbors,
//     building the next frontier.
func (e *Engine) Run(alg algorithms.Algorithm) *Result {
	res, _ := e.RunCtx(nil, alg)
	return res
}

// RunCtx runs like Run with wall-clock cancellation: the context is polled
// once per BSP iteration and cancellation returns an error wrapping
// sim.ErrCanceled, the sentinel shared with the worklist solvers and the
// simulated engines. A nil ctx disables cancellation and never fails.
func (e *Engine) RunCtx(ctx context.Context, alg algorithms.Algorithm) (*Result, error) {
	n := e.g.NumVertices()
	res := &Result{}
	state := make([]float64, n)
	for v := 0; v < n; v++ {
		state[v] = alg.InitState(graph.VertexID(v))
	}
	acc := newAccumulator(n, alg.Identity())
	applied := make([]float64, n) // delta applied this iteration, per changed vertex
	inNext := make([]int32, n)

	frontier := make([]graph.VertexID, 0, n)
	seen := make([]bool, n)
	for _, ev := range alg.InitialEvents(e.g) {
		acc.reduceLocal(ev.Vertex, ev.Delta, alg.Reduce)
		if !seen[ev.Vertex] {
			seen[ev.Vertex] = true
			frontier = append(frontier, ev.Vertex)
		}
	}

	for iter := 0; iter < e.cfg.MaxIterations && len(frontier) > 0; iter++ {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("%w after %d iterations: %v", sim.ErrCanceled, res.Iterations, ctx.Err())
			default:
			}
		}
		res.Iterations++
		res.VertexUpdates += int64(len(frontier))
		// Phase 1: apply deltas, filter to changed vertices.
		changed := frontier[:0]
		var frontierEdges int64
		for _, v := range frontier {
			delta := acc.take(v)
			old := state[v]
			next := alg.Reduce(old, delta)
			state[v] = next
			res.Access.RandomReads++
			res.Access.RandomWrites++
			if alg.Changed(old, next) {
				applied[v] = delta
				changed = append(changed, v)
				frontierEdges += int64(e.g.OutDegree(v))
			}
		}
		frontier = changed
		if len(frontier) == 0 {
			break
		}
		// Phase 2: EdgeMap with direction optimization.
		dense := e.cfg.Direction == PullOnly ||
			(e.cfg.Direction == Auto &&
				frontierEdges+int64(len(frontier)) > int64(e.g.NumEdges())/int64(e.cfg.DenseThreshold))
		var next []graph.VertexID
		if dense {
			res.PullIterations++
			next = e.edgeMapDense(alg, frontier, applied, acc, inNext, res)
		} else {
			res.PushIterations++
			next = e.edgeMapSparse(alg, frontier, applied, acc, inNext, res)
		}
		for _, v := range next {
			inNext[v] = 0
		}
		frontier = append(frontier[:0], next...)
	}
	res.Values = state
	return res, nil
}

// parallelChunks runs fn over [0,total) split across the configured workers.
func (e *Engine) parallelChunks(total int, fn func(worker, lo, hi int)) {
	workers := e.cfg.Threads
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		fn(0, 0, total)
		return
	}
	var wg sync.WaitGroup
	chunk := (total + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= total {
			break
		}
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// edgeMapSparse is the push direction: parallel over frontier vertices,
// CAS-combining propagated deltas into destination accumulators — the
// random atomic writes of Table I's Push column.
func (e *Engine) edgeMapSparse(alg algorithms.Algorithm, frontier []graph.VertexID,
	applied []float64, acc *accumulator, inNext []int32, res *Result) []graph.VertexID {

	workers := e.cfg.Threads
	lists := make([][]graph.VertexID, workers)
	stats := make([]AccessStats, workers)
	var traversed int64
	e.parallelChunks(len(frontier), func(w, lo, hi int) {
		var st AccessStats
		var local []graph.VertexID
		var edges int64
		for _, v := range frontier[lo:hi] {
			deg := e.g.OutDegree(v)
			weights := e.g.NeighborWeights(v)
			st.SequentialReads += int64(deg)
			for i, d := range e.g.Neighbors(v) {
				wt := float32(1)
				if weights != nil {
					wt = weights[i]
				}
				out := alg.Propagate(applied[v], algorithms.EdgeContext{
					Src: v, Dst: d, Weight: wt, SrcOutDegree: deg,
				})
				acc.reduceAtomic(d, out, alg.Reduce)
				st.AtomicUpdates++
				st.RandomWrites++
				edges++
				if atomic.CompareAndSwapInt32(&inNext[d], 0, 1) {
					local = append(local, d)
				}
			}
		}
		lists[w] = local
		stats[w] = st
		atomic.AddInt64(&traversed, edges)
	})
	var next []graph.VertexID
	for w := range lists {
		next = append(next, lists[w]...)
		res.Access.add(&stats[w])
	}
	res.EdgesTraversed += traversed
	return next
}

// edgeMapDense is the pull direction: parallel over all destination
// vertices, each worker scanning its vertices' in-edges and reading source
// deltas — the random reads of Table I's Pull column. No atomics are
// needed because each destination is owned by one worker.
func (e *Engine) edgeMapDense(alg algorithms.Algorithm, frontier []graph.VertexID,
	applied []float64, acc *accumulator, inNext []int32, res *Result) []graph.VertexID {

	tr := e.transpose()
	n := e.g.NumVertices()
	inFrontier := make([]bool, n)
	for _, v := range frontier {
		inFrontier[v] = true
	}
	workers := e.cfg.Threads
	lists := make([][]graph.VertexID, workers)
	stats := make([]AccessStats, workers)
	var traversed int64
	e.parallelChunks(n, func(w, lo, hi int) {
		var st AccessStats
		var local []graph.VertexID
		var edges int64
		for v := lo; v < hi; v++ {
			dst := graph.VertexID(v)
			weights := tr.NeighborWeights(dst)
			touched := false
			st.SequentialReads += int64(len(tr.Neighbors(dst)))
			for i, src := range tr.Neighbors(dst) {
				st.RandomReads++ // read of the source's state/delta
				if !inFrontier[src] {
					continue
				}
				wt := float32(1)
				if weights != nil {
					wt = weights[i]
				}
				out := alg.Propagate(applied[src], algorithms.EdgeContext{
					Src: src, Dst: dst, Weight: wt, SrcOutDegree: e.g.OutDegree(src),
				})
				acc.reduceLocal(dst, out, alg.Reduce)
				edges++
				touched = true
			}
			if touched {
				st.RandomWrites++
				if atomic.CompareAndSwapInt32(&inNext[dst], 0, 1) {
					local = append(local, dst)
				}
			}
		}
		lists[w] = local
		stats[w] = st
		atomic.AddInt64(&traversed, edges)
	})
	var next []graph.VertexID
	for w := range lists {
		next = append(next, lists[w]...)
		res.Access.add(&stats[w])
	}
	res.EdgesTraversed += traversed
	return next
}
