package ligra

import (
	"math"
	"testing"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// bestRoot returns the max-out-degree vertex, so source-rooted algorithms
// have nontrivial traversals on shuffled R-MAT graphs.
func bestRoot(g *graph.CSR) graph.VertexID {
	best, deg := graph.VertexID(0), -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > deg {
			best, deg = graph.VertexID(v), d
		}
	}
	return best
}

func testGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 11, EdgeFactor: 8,
		Weighted: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func assertMatch(t *testing.T, label string, got, want []float64, tol float64) {
	t.Helper()
	bad := 0
	for v := range want {
		a, b := got[v], want[v]
		if a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) || (math.IsInf(a, -1) && math.IsInf(b, -1)) {
			continue
		}
		if math.Abs(a-b) > tol {
			bad++
			if bad <= 3 {
				t.Errorf("%s: vertex %d = %g, want %g", label, v, a, b)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d mismatches", label, bad)
	}
}

// Oracle-agreement tests live in ligra_conformance_test.go, which routes
// them through the shared internal/conformance harness and tolerance policy.

func TestLigraSingleThreadMatchesParallel(t *testing.T) {
	g := testGraph(t)
	one := DefaultConfig()
	one.Threads = 1
	many := DefaultConfig()
	many.Threads = 8
	root := bestRoot(g)
	a := New(one, g).Run(algorithms.NewSSSP(root))
	b := New(many, g).Run(algorithms.NewSSSP(root))
	assertMatch(t, "threads", b.Values, a.Values, 1e-9)
}

func TestLigraDirectionOptimization(t *testing.T) {
	// CC activates the whole graph: direction optimization must pick pull
	// for at least one iteration; BFS from a single source starts sparse,
	// so iteration 1 must push.
	g := testGraph(t)
	e := New(DefaultConfig(), g)
	cc := e.Run(algorithms.NewConnectedComponents())
	if cc.PullIterations == 0 {
		t.Errorf("CC used no pull iterations (push=%d)", cc.PushIterations)
	}
	bfs := e.Run(algorithms.NewBFS(bestRoot(g)))
	if bfs.PushIterations == 0 {
		t.Errorf("BFS used no push iterations (pull=%d)", bfs.PullIterations)
	}
}

func TestLigraAccessStats(t *testing.T) {
	g := testGraph(t)
	push := DefaultConfig()
	push.Direction = PushOnly
	pull := DefaultConfig()
	pull.Direction = PullOnly
	e1 := New(push, g)
	e2 := New(pull, g)
	alg := algorithms.NewConnectedComponents
	rPush := e1.Run(alg())
	rPull := e2.Run(alg())
	// Table I: push performs atomic random writes; pull performs random
	// reads and no atomics on vertex data.
	if rPush.Access.AtomicUpdates == 0 {
		t.Error("push recorded no atomic updates")
	}
	if rPull.Access.AtomicUpdates != 0 {
		t.Errorf("pull recorded %d atomic updates, want 0", rPull.Access.AtomicUpdates)
	}
	if rPull.Access.RandomReads <= rPush.Access.RandomReads {
		t.Errorf("pull random reads (%d) not above push (%d)",
			rPull.Access.RandomReads, rPush.Access.RandomReads)
	}
	if rPush.Access.RandomWrites <= rPull.Access.RandomWrites {
		t.Errorf("push random writes (%d) not above pull (%d)",
			rPush.Access.RandomWrites, rPull.Access.RandomWrites)
	}
}

func TestLigraEmptyFrontierTerminates(t *testing.T) {
	// Root with no out-edges: one iteration, then done.
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 1, Dst: 2, Weight: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	res := New(DefaultConfig(), g).Run(algorithms.NewBFS(0))
	if res.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", res.Iterations)
	}
	if !math.IsInf(res.Values[2], 1) {
		t.Errorf("unreachable vertex got level %g", res.Values[2])
	}
}

func TestLigraEdgesTraversedBounded(t *testing.T) {
	g := testGraph(t)
	res := New(DefaultConfig(), g).Run(algorithms.NewBFS(bestRoot(g)))
	if res.EdgesTraversed == 0 {
		t.Fatal("no edges traversed")
	}
	// BFS settles each vertex once; a pushed vertex scans its out-edges
	// once, so traversals can't exceed |E| by more than the pull-direction
	// overhead factor.
	if res.EdgesTraversed > int64(g.NumEdges())*int64(res.Iterations) {
		t.Errorf("EdgesTraversed=%d implausibly high", res.EdgesTraversed)
	}
}

func TestModelSecondsScalesWithWork(t *testing.T) {
	g := testGraph(t)
	e := New(DefaultConfig(), g)
	small := e.Run(algorithms.NewBFS(bestRoot(g)))
	big := e.Run(algorithms.NewConnectedComponents())
	m := PaperXeon()
	ts, tb := ModelSeconds(small, m), ModelSeconds(big, m)
	if ts <= 0 || tb <= 0 {
		t.Fatalf("non-positive modeled times %g, %g", ts, tb)
	}
	if tb <= ts {
		t.Errorf("CC (%g s) modeled faster than BFS (%g s) despite more work", tb, ts)
	}
}

func TestModelSecondsComponents(t *testing.T) {
	m := PaperXeon()
	res := &Result{Iterations: 10}
	base := ModelSeconds(res, m)
	if want := 10 * m.BarrierCost; base != want {
		t.Errorf("barrier-only time = %g, want %g", base, want)
	}
	res.Access.AtomicUpdates = 1_000_000
	withAtomics := ModelSeconds(res, m)
	if withAtomics <= base {
		t.Error("atomics did not increase modeled time")
	}
	res2 := &Result{Iterations: 10}
	res2.Access.SequentialReads = 1_000_000
	if ModelSeconds(res2, m) <= base {
		t.Error("sequential traffic did not increase modeled time")
	}
	// Zero-core guard.
	m0 := m
	m0.Cores = 0
	if ModelSeconds(res, m0) <= 0 {
		t.Error("zero cores mishandled")
	}
}

func TestModelSecondsSameOrderAsWallClock(t *testing.T) {
	// Sanity: on this host, the modeled 12-core time should be within two
	// orders of magnitude of single-host wall time (it is an analytic
	// model of different hardware, not a profiler).
	g := testGraph(t)
	e := New(DefaultConfig(), g)
	start := time.Now()
	res := e.Run(algorithms.NewConnectedComponents())
	wall := time.Since(start).Seconds()
	modeled := ModelSeconds(res, PaperXeon())
	if modeled > wall*100 || wall > modeled*10_000 {
		t.Errorf("modeled %g s vs wall %g s: unreasonably far apart", modeled, wall)
	}
}
