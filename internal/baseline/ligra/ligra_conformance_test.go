// External test package: ligra's oracle-agreement tests go through the
// shared differential harness (internal/conformance imports this package,
// so the harness cannot be used from package ligra itself).
package ligra_test

import (
	"testing"

	"graphpulse/internal/baseline/ligra"
	"graphpulse/internal/conformance"
	"graphpulse/internal/graph/gen"
)

// TestLigraMatchesOracle checks every traversal direction against the
// reference oracles for the full conformance algorithm set, under the single
// repository-wide tolerance policy (conformance.Tolerance).
func TestLigraMatchesOracle(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []ligra.Direction{ligra.Auto, ligra.PushOnly, ligra.PullOnly} {
		dir := dir
		cfg := conformance.LigraConfig()
		cfg.Direction = dir
		engine := conformance.EngineLigra(cfg)
		for _, c := range conformance.Algorithms() {
			c := c
			t.Run(engineDirName(dir)+"/"+c.Name, func(t *testing.T) {
				t.Parallel()
				prepared := c.Prepared(g)
				if err := conformance.VerifyEngine(engine, prepared, c.Maker(conformance.BestRoot(prepared))); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

func engineDirName(dir ligra.Direction) string {
	switch dir {
	case ligra.PushOnly:
		return "push"
	case ligra.PullOnly:
		return "pull"
	default:
		return "auto"
	}
}
