package graphicionado

import (
	"math"
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// bestRoot returns the max-out-degree vertex, so source-rooted algorithms
// have nontrivial traversals on shuffled R-MAT graphs.
func bestRoot(g *graph.CSR) graph.VertexID {
	best, deg := graph.VertexID(0), -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > deg {
			best, deg = graph.VertexID(v), d
		}
	}
	return best
}

func testGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func assertMatch(t *testing.T, label string, got, want []float64, tol float64) {
	t.Helper()
	bad := 0
	for v := range want {
		a, b := got[v], want[v]
		if a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) || (math.IsInf(a, -1) && math.IsInf(b, -1)) {
			continue
		}
		if math.Abs(a-b) > tol {
			bad++
			if bad <= 3 {
				t.Errorf("%s: vertex %d = %g, want %g", label, v, a, b)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d mismatches", label, bad)
	}
}

func TestGraphicionadoMatchesOracle(t *testing.T) {
	g := testGraph(t)
	root := bestRoot(g)
	cases := []struct {
		alg  algorithms.Algorithm
		want []float64
		tol  float64
	}{
		{algorithms.NewBFS(root), algorithms.BFSLevels(g, root), 0},
		{algorithms.NewSSSP(root), algorithms.DijkstraSSSP(g, root), 1e-9},
		{algorithms.NewConnectedComponents(), algorithms.MaxLabelFixedPoint(g), 0},
		{algorithms.NewSSWP(root), algorithms.WidestPath(g, root), 1e-9},
	}
	for _, tc := range cases {
		res, err := Run(DefaultConfig(), g, tc.alg)
		if err != nil {
			t.Fatalf("%s: %v", tc.alg.Name(), err)
		}
		assertMatch(t, tc.alg.Name(), res.Values, tc.want, tc.tol)
	}
}

func TestGraphicionadoPageRank(t *testing.T) {
	g := testGraph(t)
	pr := algorithms.NewPageRankDelta()
	pr.Threshold = 1e-6
	want := algorithms.PageRankPower(g, pr.Alpha, 1e-12, 10_000)
	res, err := Run(DefaultConfig(), g, pr)
	if err != nil {
		t.Fatal(err)
	}
	assertMatch(t, "pagerank", res.Values, want, 5e-3)
}

func TestGraphicionadoBFSIterationsEqualDepth(t *testing.T) {
	g, err := gen.Chain(30, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultConfig(), g, algorithms.NewBFS(0))
	if err != nil {
		t.Fatal(err)
	}
	// BSP: one iteration per BFS level (plus the final empty check).
	if res.Iterations < 29 || res.Iterations > 31 {
		t.Errorf("Iterations = %d, want ≈ chain depth 30", res.Iterations)
	}
	if res.Cycles == 0 || res.Seconds <= 0 {
		t.Error("timing not recorded")
	}
}

func TestGraphicionadoTrafficAccounted(t *testing.T) {
	g := testGraph(t)
	res, err := Run(DefaultConfig(), g, algorithms.NewBFS(bestRoot(g)))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemReads == 0 {
		t.Error("no reads recorded (edge + vertex streams)")
	}
	// The apply phase writes back each touched vertex's property record.
	if res.MemWrites == 0 {
		t.Error("no apply-phase writes recorded")
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization = %g", res.Utilization)
	}
	if res.OffChipAccesses() != res.MemReads+res.MemWrites {
		t.Error("OffChipAccesses inconsistent")
	}
	if res.BytesMoved != 64*res.OffChipAccesses() {
		t.Error("BytesMoved inconsistent with line transfers")
	}
}

func TestGraphicionadoSequentialStreamsUtilizeWell(t *testing.T) {
	// CC activates everything: the edge stream covers the whole CSR, so
	// utilization should be high (sequential streaming).
	g := testGraph(t)
	res, err := Run(DefaultConfig(), g, algorithms.NewConnectedComponents())
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.5 {
		t.Errorf("utilization = %.2f, want ≥ 0.5 for sequential edge streaming", res.Utilization)
	}
}

func TestGraphicionadoConfigValidation(t *testing.T) {
	g, _ := gen.Chain(4, false)
	muts := []func(*Config){
		func(c *Config) { c.Streams = 0 },
		func(c *Config) { c.PrefetchLines = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.MaxIterations = 0 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := Run(cfg, g, algorithms.NewBFS(0)); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	empty, _ := graph.FromEdges(0, nil, false)
	if _, err := Run(DefaultConfig(), empty, algorithms.NewBFS(0)); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestGraphicionadoMoreEdgeTraversalsThanAsync(t *testing.T) {
	// BSP re-streams active vertices every iteration without lookahead;
	// edge traversals must be at least the oracle's (which coalesces per
	// vertex activation).
	g := testGraph(t)
	res, err := Run(DefaultConfig(), g, algorithms.NewConnectedComponents())
	if err != nil {
		t.Fatal(err)
	}
	oracle := algorithms.Solve(g, algorithms.NewConnectedComponents())
	if res.EdgesTraversed < oracle.Emitted {
		t.Errorf("BSP traversed %d edges, less than coalescing worklist %d",
			res.EdgesTraversed, oracle.Emitted)
	}
}
