package graphicionado

import (
	"testing"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
)

// bestRoot returns the max-out-degree vertex, so source-rooted algorithms
// have nontrivial traversals on shuffled R-MAT graphs.
func bestRoot(g *graph.CSR) graph.VertexID {
	best, deg := graph.VertexID(0), -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > deg {
			best, deg = graph.VertexID(v), d
		}
	}
	return best
}

func testGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Oracle-agreement tests live in graphicionado_conformance_test.go, which
// routes them through the shared internal/conformance harness and tolerance
// policy.

func TestGraphicionadoBFSIterationsEqualDepth(t *testing.T) {
	g, err := gen.Chain(30, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultConfig(), g, algorithms.NewBFS(0))
	if err != nil {
		t.Fatal(err)
	}
	// BSP: one iteration per BFS level (plus the final empty check).
	if res.Iterations < 29 || res.Iterations > 31 {
		t.Errorf("Iterations = %d, want ≈ chain depth 30", res.Iterations)
	}
	if res.Cycles == 0 || res.Seconds <= 0 {
		t.Error("timing not recorded")
	}
}

func TestGraphicionadoTrafficAccounted(t *testing.T) {
	g := testGraph(t)
	res, err := Run(DefaultConfig(), g, algorithms.NewBFS(bestRoot(g)))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemReads == 0 {
		t.Error("no reads recorded (edge + vertex streams)")
	}
	// The apply phase writes back each touched vertex's property record.
	if res.MemWrites == 0 {
		t.Error("no apply-phase writes recorded")
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization = %g", res.Utilization)
	}
	if res.OffChipAccesses() != res.MemReads+res.MemWrites {
		t.Error("OffChipAccesses inconsistent")
	}
	if res.BytesMoved != 64*res.OffChipAccesses() {
		t.Error("BytesMoved inconsistent with line transfers")
	}
}

func TestGraphicionadoSequentialStreamsUtilizeWell(t *testing.T) {
	// CC activates everything: the edge stream covers the whole CSR, so
	// utilization should be high (sequential streaming).
	g := testGraph(t)
	res, err := Run(DefaultConfig(), g, algorithms.NewConnectedComponents())
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.5 {
		t.Errorf("utilization = %.2f, want ≥ 0.5 for sequential edge streaming", res.Utilization)
	}
}

func TestGraphicionadoConfigValidation(t *testing.T) {
	g, _ := gen.Chain(4, false)
	muts := []func(*Config){
		func(c *Config) { c.Streams = 0 },
		func(c *Config) { c.PrefetchLines = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.MaxIterations = 0 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := Run(cfg, g, algorithms.NewBFS(0)); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	empty, _ := graph.FromEdges(0, nil, false)
	if _, err := Run(DefaultConfig(), empty, algorithms.NewBFS(0)); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestGraphicionadoMoreEdgeTraversalsThanAsync(t *testing.T) {
	// BSP re-streams active vertices every iteration without lookahead;
	// edge traversals must be at least the oracle's (which coalesces per
	// vertex activation).
	g := testGraph(t)
	res, err := Run(DefaultConfig(), g, algorithms.NewConnectedComponents())
	if err != nil {
		t.Fatal(err)
	}
	oracle := algorithms.Solve(g, algorithms.NewConnectedComponents())
	if res.EdgesTraversed < oracle.Emitted {
		t.Errorf("BSP traversed %d edges, less than coalescing worklist %d",
			res.EdgesTraversed, oracle.Emitted)
	}
}
