// External test package: Graphicionado's oracle-agreement tests go through
// the shared differential harness (internal/conformance imports this
// package, so the harness cannot be used from package graphicionado
// itself).
package graphicionado_test

import (
	"testing"

	"graphpulse/internal/baseline/graphicionado"
	"graphpulse/internal/conformance"
	"graphpulse/internal/graph/gen"
)

// TestGraphicionadoMatchesOracle checks the BSP pipeline model against the
// reference oracles for the full conformance algorithm set, under the single
// repository-wide tolerance policy (conformance.Tolerance).
func TestGraphicionadoMatchesOracle(t *testing.T) {
	g, err := gen.RMAT(gen.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 10, EdgeFactor: 8,
		Weighted: true, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine := conformance.EngineGraphicionado(graphicionado.DefaultConfig())
	for _, c := range conformance.Algorithms() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			prepared := c.Prepared(g)
			if err := conformance.VerifyEngine(engine, prepared, c.Maker(conformance.BestRoot(prepared))); err != nil {
				t.Error(err)
			}
		})
	}
}
