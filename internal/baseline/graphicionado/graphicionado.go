// Package graphicionado models Graphicionado (Ham et al., MICRO'16), the
// hardware baseline of the paper's evaluation: a Bulk-Synchronous
// vertex-centric accelerator with parallel edge-processing streams.
//
// The model follows the GraphPulse authors' re-implementation choices
// (Section VI-A), which are generous to Graphicionado:
//
//   - unlimited on-chip memory for the temporary (destination) update
//     buffer, so scatter updates never spill,
//   - zero-cost active-set management,
//   - the same DRAM subsystem as GraphPulse (4 × DDR3 channels).
//
// Off-chip traffic per BSP iteration, as in the original design:
//
//   - the source-oriented processing phase streams each active vertex's
//     property record and its out-edge list from DRAM (sequential in CSR
//     order through parallel streams with prefetch), and
//   - the apply phase streams the touched vertices' property records
//     back-to-back, reading and writing each once.
//
// Its disadvantages versus GraphPulse are structural, exactly as in the
// paper: synchronous BSP convergence (no lookahead, no coalescing across
// iterations), a barrier per iteration, and re-streaming vertex + edge data
// every iteration a vertex is active.
package graphicionado

import (
	"context"
	"fmt"
	"sort"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/graph"
	"graphpulse/internal/mem"
	"graphpulse/internal/sim"
	"graphpulse/internal/sim/fault"
	"graphpulse/internal/sim/telemetry"
)

// Config sizes the model.
type Config struct {
	// Streams is the number of parallel edge-processing pipelines (8, to
	// match the GraphPulse configuration's memory parallelism).
	Streams int
	// PrefetchLines is the sequential prefetch depth per stream.
	PrefetchLines int
	// Memory configures the shared DRAM model.
	Memory mem.Config
	// ClockHz converts cycles to seconds (1 GHz).
	ClockHz float64
	// MaxCycles aborts runaway simulations.
	MaxCycles uint64
	// MaxIterations bounds the BSP loop.
	MaxIterations int
	// Telemetry enables time-resolved sampling (frontier size, edge
	// throughput, DRAM traffic) into Result.Telemetry; see METRICS.md.
	Telemetry telemetry.Config
	// Fault configures deterministic fault injection. Only the DRAM fault
	// class applies to this model (its datapath is on-chip and BSP-
	// synchronous); the zero value injects nothing.
	Fault fault.Config
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{
		Streams:       8,
		PrefetchLines: 4,
		Memory:        mem.DefaultConfig(),
		ClockHz:       1e9,
		MaxCycles:     5_000_000_000,
		MaxIterations: 1_000_000,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.Streams < 1:
		return fmt.Errorf("graphicionado: Streams=%d", c.Streams)
	case c.PrefetchLines < 1:
		return fmt.Errorf("graphicionado: PrefetchLines=%d", c.PrefetchLines)
	case c.ClockHz <= 0:
		return fmt.Errorf("graphicionado: ClockHz=%g", c.ClockHz)
	case c.MaxCycles == 0:
		return fmt.Errorf("graphicionado: MaxCycles=0")
	case c.MaxIterations < 1:
		return fmt.Errorf("graphicionado: MaxIterations=%d", c.MaxIterations)
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	return c.Memory.Validate()
}

// Result is the outcome of one run.
type Result struct {
	Values     []float64
	Cycles     uint64
	Seconds    float64
	Iterations int
	// EdgesTraversed counts edge relaxations across all iterations.
	EdgesTraversed int64
	// Off-chip traffic: edge stream + vertex property stream.
	MemReads    int64
	MemWrites   int64
	BytesMoved  int64
	BytesUseful int64
	Utilization float64
	// Telemetry holds the sampled series when Config.Telemetry was enabled.
	Telemetry *telemetry.Recorder
}

// OffChipAccesses returns total line transfers.
func (r *Result) OffChipAccesses() int64 { return r.MemReads + r.MemWrites }

const (
	edgeBase          = 0x0100_0000_0000
	vertexBase        = 0x0000_0000_0000
	vertexRecordBytes = 8
)

// engine is the per-run simulation state.
type engine struct {
	cfg       Config
	g         graph.Adjacency
	alg       algorithms.Algorithm
	sim       *sim.Engine
	memory    *mem.Memory
	fetch     *mem.Fetcher
	edgeBytes uint64

	ctx context.Context // nil = no cancellation

	state   []float64
	acc     []float64
	applied []float64

	active  []graph.VertexID
	nextIdx int
	streams []stream

	touched   []graph.VertexID
	inTouched []bool

	// Per-phase edge-line readiness, shared by all streams (consecutive
	// active vertices often share boundary lines). phaseGen invalidates
	// completions that land after their phase ended.
	lineState map[uint64]uint8
	phaseGen  uint64

	edgesTraversed int64
	iterations     int
}

type stream struct {
	v      graph.VertexID
	idx    int
	deg    int
	start  uint64
	active bool
}

// Run executes alg over g under the Graphicionado model.
func Run(cfg Config, g graph.Adjacency, alg algorithms.Algorithm) (*Result, error) {
	return RunCtx(nil, cfg, g, alg)
}

// RunCtx runs like Run with wall-clock cancellation: when ctx is done the
// simulation stops with an error wrapping sim.ErrCanceled. A nil ctx
// disables cancellation.
func RunCtx(ctx context.Context, cfg Config, g graph.Adjacency, alg algorithms.Algorithm) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("graphicionado: empty graph")
	}
	e := &engine{
		cfg:       cfg,
		g:         g,
		alg:       alg,
		ctx:       ctx,
		sim:       sim.NewEngine(),
		edgeBytes: algorithms.EdgeRecordBytes(alg),
	}
	e.memory = mem.New(cfg.Memory)
	e.memory.InjectFaults(fault.New(cfg.Fault))
	e.fetch = mem.NewFetcher(e.memory)
	e.sim.Register(e.memory)
	// The BSP loops drive e.sim.Step() directly, so a recorder registered
	// here is ticked like any clocked block; registered after the memory so
	// it samples end-of-cycle state.
	tel := telemetry.New(cfg.Telemetry)
	if tel != nil {
		e.memory.RegisterProbes(tel, "memory")
		tel.Gauge("frontier", "frontier_size", "vertices", func() int64 { return int64(len(e.active)) })
		tel.Rate("frontier", "edges_traversed", "edges", func() int64 { return e.edgesTraversed })
		e.sim.Register(tel)
	}

	n := g.NumVertices()
	e.state = make([]float64, n)
	e.acc = make([]float64, n)
	e.applied = make([]float64, n)
	id := alg.Identity()
	for v := 0; v < n; v++ {
		e.state[v] = alg.InitState(graph.VertexID(v))
		e.acc[v] = id
	}
	e.inTouched = make([]bool, n)
	e.streams = make([]stream, cfg.Streams)
	seen := make([]bool, n)
	for _, ev := range alg.InitialEvents(g) {
		e.acc[ev.Vertex] = alg.Reduce(e.acc[ev.Vertex], ev.Delta)
		if !seen[ev.Vertex] {
			seen[ev.Vertex] = true
			e.active = append(e.active, ev.Vertex)
		}
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	ms := e.memory.Stats()
	res := &Result{
		Values:         e.state,
		Cycles:         e.sim.Cycle(),
		Seconds:        e.sim.SecondsAt(cfg.ClockHz),
		Iterations:     e.iterations,
		EdgesTraversed: e.edgesTraversed,
		MemReads:       ms.Counter("reads"),
		MemWrites:      ms.Counter("writes"),
		BytesMoved:     ms.Counter("bytes_transferred"),
		BytesUseful:    ms.Counter("bytes_useful"),
		Utilization:    e.memory.Utilization(),
		Telemetry:      tel,
	}
	return res, nil
}

func (e *engine) run() error {
	id := e.alg.Identity()
	for e.iterations = 0; e.iterations < e.cfg.MaxIterations; e.iterations++ {
		// Apply phase (on-chip): consume accumulated deltas, keep changed
		// vertices as this iteration's sources.
		sources := e.active[:0]
		for _, v := range e.active {
			delta := e.acc[v]
			e.acc[v] = id
			old := e.state[v]
			next := e.alg.Reduce(old, delta)
			e.state[v] = next
			if e.alg.Changed(old, next) && e.g.OutDegree(v) > 0 {
				e.applied[v] = delta
				sources = append(sources, v)
			}
		}
		e.active = sources
		if len(e.active) == 0 {
			return nil
		}
		// The processing phase reads the active (source) vertex property
		// records alongside the edge stream; sort the list so the stream is
		// CSR-sequential.
		sort.Slice(e.active, func(i, j int) bool { return e.active[i] < e.active[j] })
		if err := e.streamVertexRecords(e.active, false); err != nil {
			return err
		}
		// Processing phase: stream the active vertices' edges from DRAM.
		if err := e.processingPhase(); err != nil {
			return err
		}
		// Apply phase: read and write back each touched vertex's property
		// record ("the apply phase streams all touched vertices").
		sort.Slice(e.touched, func(i, j int) bool { return e.touched[i] < e.touched[j] })
		if err := e.streamVertexRecords(e.touched, false); err != nil {
			return err
		}
		if err := e.streamVertexRecords(e.touched, true); err != nil {
			return err
		}
		// Next frontier: every touched destination (filtered next apply).
		e.active = append(e.active[:0], e.touched...)
		for _, v := range e.touched {
			e.inTouched[v] = false
		}
		e.touched = e.touched[:0]
	}
	return fmt.Errorf("graphicionado: exceeded %d iterations", e.cfg.MaxIterations)
}

// canceled polls the run context (cheaply: every 1024 cycles) and returns
// a structured cancellation error when it has expired.
func (e *engine) canceled() error {
	if e.ctx == nil || e.sim.Cycle()%1024 != 0 {
		return nil
	}
	select {
	case <-e.ctx.Done():
		return fmt.Errorf("graphicionado: %w after %d cycles: %v",
			sim.ErrCanceled, e.sim.Cycle(), e.ctx.Err())
	default:
		return nil
	}
}

// streamVertexRecords streams the property records of the given sorted
// vertex list through DRAM at line granularity, blocking until the stream
// completes (the phases are separated by the BSP barrier anyway). Useful
// bytes reflect the records actually consumed per line.
func (e *engine) streamVertexRecords(vs []graph.VertexID, write bool) error {
	if len(vs) == 0 {
		return nil
	}
	remaining := 0
	i := 0
	for i < len(vs) {
		line := (vertexBase + uint64(vs[i])*vertexRecordBytes) &^ (mem.LineBytes - 1)
		useful := uint64(0)
		for i < len(vs) && (vertexBase+uint64(vs[i])*vertexRecordBytes)&^(mem.LineBytes-1) == line {
			useful += vertexRecordBytes
			i++
		}
		remaining++
		e.fetch.Fetch(line, mem.LineBytes, useful, write, func() { remaining-- })
	}
	start := e.sim.Cycle()
	for remaining > 0 {
		e.fetch.Pump()
		e.sim.Step()
		if e.sim.Cycle()-start > e.cfg.MaxCycles {
			return fmt.Errorf("graphicionado: vertex stream exceeded %d cycles: %w",
				e.cfg.MaxCycles, sim.ErrDeadline)
		}
		if err := e.canceled(); err != nil {
			return err
		}
	}
	return nil
}

// Line-state values for lineState.
const (
	linePending uint8 = 1
	lineReady   uint8 = 2
)

// processingPhase drains the active list through the parallel streams, one
// edge per stream per cycle when its data has arrived.
func (e *engine) processingPhase() error {
	e.nextIdx = 0
	e.phaseGen++
	e.lineState = make(map[uint64]uint8)
	for i := range e.streams {
		e.streams[i].active = false
	}
	start := e.sim.Cycle()
	for {
		busy := false
		for i := range e.streams {
			s := &e.streams[i]
			if !s.active {
				if e.nextIdx >= len(e.active) {
					continue
				}
				v := e.active[e.nextIdx]
				e.nextIdx++
				s.v = v
				s.idx = 0
				s.deg = e.g.OutDegree(v)
				s.start = e.g.EdgeOffset(v)
				s.active = true
			}
			busy = true
			e.prefetch(s)
			edge := s.start + uint64(s.idx)
			line := (edgeBase + edge*e.edgeBytes) &^ (mem.LineBytes - 1)
			if e.lineState[line] != lineReady {
				continue // waiting for edge data
			}
			e.relax(s.v, edge, s.deg)
			s.idx++
			if s.idx >= s.deg {
				s.active = false
			}
		}
		if !busy && e.fetch.Idle() && e.memory.Pending() == 0 {
			return nil
		}
		e.fetch.Pump()
		e.sim.Step()
		if e.sim.Cycle()-start > e.cfg.MaxCycles {
			return fmt.Errorf("graphicionado: processing phase exceeded %d cycles: %w",
				e.cfg.MaxCycles, sim.ErrDeadline)
		}
		if err := e.canceled(); err != nil {
			return err
		}
	}
}

// prefetch keeps up to PrefetchLines edge lines in flight for a stream.
// Line state is shared across streams, so boundary lines common to
// consecutive active vertices are fetched once per phase.
func (e *engine) prefetch(s *stream) {
	firstLine := (edgeBase + (s.start+uint64(s.idx))*e.edgeBytes) &^ (mem.LineBytes - 1)
	lastLine := (edgeBase + (s.start+uint64(s.deg)-1)*e.edgeBytes) &^ (mem.LineBytes - 1)
	for i := 0; i < e.cfg.PrefetchLines; i++ {
		line := firstLine + uint64(i)*mem.LineBytes
		if line > lastLine {
			return
		}
		if e.lineState[line] != 0 {
			continue
		}
		e.lineState[line] = linePending
		useful := e.edgeLineUseful(line, s.start, s.deg)
		gen := e.phaseGen
		e.fetch.Fetch(line, mem.LineBytes, useful, false, func() {
			if e.phaseGen == gen {
				e.lineState[line] = lineReady
			}
		})
	}
}

func (e *engine) edgeLineUseful(line uint64, start uint64, deg int) uint64 {
	lo := edgeBase + start*e.edgeBytes
	hi := edgeBase + (start+uint64(deg))*e.edgeBytes
	a, b := line, line+mem.LineBytes
	if lo > a {
		a = lo
	}
	if hi < b {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}

// relax processes one edge: propagate and reduce into the on-chip temp
// property (no off-chip traffic under the unlimited-buffer assumption).
func (e *engine) relax(src graph.VertexID, edge uint64, deg int) {
	dst := e.g.EdgeDst(edge)
	out := e.alg.Propagate(e.applied[src], algorithms.EdgeContext{
		Src:          src,
		Dst:          dst,
		Weight:       e.g.EdgeWeight(edge),
		SrcOutDegree: deg,
	})
	e.acc[dst] = e.alg.Reduce(e.acc[dst], out)
	e.edgesTraversed++
	if !e.inTouched[dst] {
		e.inTouched[dst] = true
		e.touched = append(e.touched, dst)
	}
}
