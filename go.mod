module graphpulse

go 1.22
