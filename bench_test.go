// Benchmarks regenerating the paper's evaluation artifacts — one benchmark
// per table and figure, at the tiny workload tier so `go test -bench=.`
// completes in minutes. The cmd/bench tool runs the same experiments at
// larger tiers and prints the full tables; EXPERIMENTS.md records
// paper-vs-measured values.
//
// Benchmarks report paper metrics through b.ReportMetric (speedup-x,
// coalesce-pct, utilization, …) alongside the usual ns/op of regenerating
// the artifact.
package graphpulse_test

import (
	"io"
	"sync"
	"testing"
	"time"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/baseline/graphicionado"
	"graphpulse/internal/baseline/ligra"
	"graphpulse/internal/bench"
	"graphpulse/internal/core"
	"graphpulse/internal/energy"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/mem"
)

// benchOptions is the shared experiment configuration: the LJ-class
// workload at tiny tier (the dataset Figures 4 and 8 use), all algorithms.
func benchOptions() bench.Options {
	return bench.Options{
		Tier:     gen.Tiny,
		Datasets: []string{"LJ"},
		Out:      io.Discard,
	}
}

// ljPR returns the Figure 4/8 workload (PR-Delta on the LJ-class graph).
func ljPR(b *testing.B) *bench.Workload {
	b.Helper()
	opt := benchOptions()
	opt.Algorithms = []string{"pr"}
	ws, err := bench.Workloads(opt)
	if err != nil {
		b.Fatal(err)
	}
	return ws[0]
}

func runOpt(b *testing.B, w *bench.Workload) *core.Result {
	b.Helper()
	a, err := core.New(core.OptimizedConfig(), w.Graph, w.NewAlgorithm())
	if err != nil {
		b.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// sweepOnce caches the LJ engine sweep shared by the Figure 10–14 and
// energy benchmarks; the first benchmark to need it pays its cost inside
// its own timer.
var (
	sweepMu     sync.Mutex
	cachedSweep *bench.Sweep
)

func ljSweep(b *testing.B) *bench.Sweep {
	b.Helper()
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if cachedSweep == nil {
		sw, err := bench.RunSweep(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		cachedSweep = sw
	}
	return cachedSweep
}

// ---------------------------------------------------------------- Figures

func BenchmarkFig04Coalescing(b *testing.B) {
	w := ljPR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runOpt(b, w)
		var produced, coalesced int64
		for _, rs := range res.RoundLog {
			produced += rs.Produced
			coalesced += rs.Coalesced
		}
		b.ReportMetric(100*float64(coalesced)/float64(produced), "coalesce-pct")
		b.ReportMetric(float64(res.Rounds), "rounds")
	}
}

func BenchmarkFig08Lookahead(b *testing.B) {
	w := ljPR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runOpt(b, w)
		var ahead, total int64
		for _, rs := range res.RoundLog {
			for bk, c := range rs.Lookahead {
				total += c
				if bk > 0 {
					ahead += c
				}
			}
		}
		b.ReportMetric(100*float64(ahead)/float64(total), "lookahead-pct")
	}
}

func BenchmarkFig10Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := ljSweep(b)
		var opt, base, gion float64
		for _, c := range sw.Cells {
			opt += c.OptSpeedup()
			base += c.BaseSpeedup()
			gion += c.GionSpeedup()
		}
		n := float64(len(sw.Cells))
		b.ReportMetric(opt/n, "opt-speedup-x")
		b.ReportMetric(base/n, "base-speedup-x")
		b.ReportMetric(gion/n, "gion-speedup-x")
	}
}

func BenchmarkFig11Offchip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := ljSweep(b)
		var ratio float64
		for _, c := range sw.Cells {
			ratio += float64(c.Opt.OffChipAccesses()) / float64(c.Gion.OffChipAccesses())
		}
		b.ReportMetric(ratio/float64(len(sw.Cells)), "gp-vs-gion-accesses")
	}
}

func BenchmarkFig12Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := ljSweep(b)
		var gp, gion float64
		for _, c := range sw.Cells {
			gp += c.Opt.Utilization
			gion += c.Gion.Utilization
		}
		n := float64(len(sw.Cells))
		b.ReportMetric(gp/n, "gp-utilization")
		b.ReportMetric(gion/n, "gion-utilization")
	}
}

func BenchmarkFig13Stages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := ljSweep(b)
		stageSum := map[string]float64{}
		for _, c := range sw.Cells {
			for s, v := range c.Opt.StageMeans {
				stageSum[s] += v
			}
		}
		n := float64(len(sw.Cells))
		for _, s := range core.StageNames {
			b.ReportMetric(stageSum[s]/n, s+"-cycles")
		}
	}
}

func BenchmarkFig14Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := ljSweep(b)
		var genEdge, procStall float64
		for _, c := range sw.Cells {
			genEdge += c.Opt.GenBreakdown["edge_read"]
			procStall += c.Opt.ProcBreakdown["stalling"]
		}
		n := float64(len(sw.Cells))
		b.ReportMetric(genEdge/n, "gen-edge-read-frac")
		b.ReportMetric(procStall/n, "proc-stall-frac")
	}
}

// ---------------------------------------------------------------- Tables

func BenchmarkTable1AccessPatterns(b *testing.B) {
	w := ljPR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push := ligra.DefaultConfig()
		push.Direction = ligra.PushOnly
		rPush := ligra.New(push, w.Graph).Run(w.NewAlgorithm())
		pull := ligra.DefaultConfig()
		pull.Direction = ligra.PullOnly
		rPull := ligra.New(pull, w.Graph).Run(w.NewAlgorithm())
		b.ReportMetric(float64(rPush.Access.AtomicUpdates), "push-atomics")
		b.ReportMetric(float64(rPull.Access.RandomReads), "pull-random-reads")
	}
}

func BenchmarkTable2Mappings(b *testing.B) {
	samples := []float64{0, 1, 0.5, 7, 1e6, algorithms.Infinity}
	algs := []algorithms.Algorithm{
		algorithms.NewPageRankDelta(), algorithms.NewAdsorption(),
		algorithms.NewSSSP(0), algorithms.NewBFS(0),
		algorithms.NewConnectedComponents(),
	}
	for i := 0; i < b.N; i++ {
		for _, a := range algs {
			if err := algorithms.CheckAlgebraicLaws(a, samples); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable4Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range gen.Datasets {
			g, err := spec.Generate(gen.Tiny)
			if err != nil {
				b.Fatal(err)
			}
			_ = graph.ComputeStats(g)
		}
	}
}

func BenchmarkTable5Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := energy.TableV()
		b.ReportMetric(energy.AcceleratorPowerWatts(rows, 1), "accel-watts")
		b.ReportMetric(energy.TotalAreaMM2(rows), "area-mm2")
	}
}

func BenchmarkEnergyEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := ljSweep(b)
		threads := ligra.DefaultConfig().Threads
		var sum float64
		for _, c := range sw.Cells {
			aj := energy.AcceleratorEnergyJoules(nil, c.Opt.Seconds, 1)
			cj := energy.CPUEnergyJoules(c.LigraSeconds * float64(threads) / 12)
			sum += cj / aj
		}
		b.ReportMetric(sum/float64(len(sw.Cells)), "efficiency-x")
	}
}

// ----------------------------------------------- Engine micro-benchmarks

func BenchmarkEngineGraphPulseOpt(b *testing.B) {
	w := ljPR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runOpt(b, w)
		b.ReportMetric(float64(res.Cycles), "sim-cycles")
	}
}

func BenchmarkEngineGraphPulseBase(b *testing.B) {
	w := ljPR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := core.New(core.BaselineConfig(), w.Graph, w.NewAlgorithm())
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "sim-cycles")
	}
}

func BenchmarkEngineGraphicionado(b *testing.B) {
	w := ljPR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := graphicionado.Run(graphicionado.DefaultConfig(), w.Graph, w.NewAlgorithm())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "sim-cycles")
	}
}

func BenchmarkEngineLigra(b *testing.B) {
	w := ljPR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res := ligra.New(ligra.DefaultConfig(), w.Graph).Run(w.NewAlgorithm())
		b.ReportMetric(time.Since(start).Seconds()*1e3, "wall-ms")
		b.ReportMetric(float64(res.Iterations), "iterations")
	}
}

func BenchmarkEngineReferenceSolve(b *testing.B) {
	w := ljPR(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := algorithms.Solve(w.Graph, w.NewAlgorithm())
		b.ReportMetric(float64(res.Activations), "activations")
	}
}

// ------------------------------------------- Component micro-benchmarks

func BenchmarkQueueInsertCoalesce(b *testing.B) {
	q := coreTestQueue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.InsertForBench(uint32(i)&1023, 0.5)
	}
}

// coreTestQueue exposes a queue through the core package's bench hook.
func coreTestQueue() *core.BenchQueue { return core.NewBenchQueue(1024, 64, 8) }

func BenchmarkDRAMStream(b *testing.B) {
	m := mem.New(mem.DefaultConfig())
	done := 0
	addr := uint64(0)
	cycle := uint64(0)
	b.ResetTimer()
	for done < b.N {
		for m.Enqueue(mem.Request{Addr: addr, UsefulBytes: 64, OnComplete: func() { done++ }}) {
			addr += mem.LineBytes
		}
		m.Tick(cycle)
		cycle++
	}
	b.SetBytes(mem.LineBytes)
}

func BenchmarkRMATGeneration(b *testing.B) {
	p := gen.RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 12, EdgeFactor: 8, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := gen.RMAT(p); err != nil {
			b.Fatal(err)
		}
	}
}
