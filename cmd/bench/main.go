// Command bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	bench [-exp fig10,fig11] [-tier tiny|mini|full] [-datasets LJ,WG] [-algs pr,bfs]
//	      [-parallel N] [-progress] [-timeout 10m] [-manifest run.json] [-resume]
//	      [-engines solve,psolve]
//
// With no -exp it runs every experiment in paper order. Tier controls
// workload scale: tiny (seconds, default), mini (minutes), full
// (paper-scale; hours and tens of GB for the TW-class workload).
// -parallel bounds the sweep's simulated-engine worker pool (default
// GOMAXPROCS; the host-timed Ligra phase always runs serially), and
// -progress prints per-cell completion lines to stderr. Table output is
// byte-identical for every -parallel value.
//
// Long sweeps are resilient: -timeout bounds each simulated-engine job
// (an overrunning job records a structured failure in its cell instead of
// wedging the sweep), -manifest records every completed job to a JSON file
// rewritten atomically after each one, and -resume restores those jobs on
// the next run instead of re-measuring them — the resumed CSV and tables
// are byte-identical to an uninterrupted run. -faults passes an explicit
// fault spec (see ROADMAP/EXPERIMENTS) to the "faults" experiment.
//
// -engines selects which registry engines (internal/engines) the "scaling"
// experiment times; names are validated against the registry.
//
// -telemetry PREFIX makes the timeline experiment export its time series as
// PREFIX.csv and PREFIX.trace.json (Chrome trace_event; loads in Perfetto —
// see EXPERIMENTS.md "Time-resolved figures" and METRICS.md).
// -cpuprofile/-memprofile write Go pprof profiles of the harness itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"graphpulse/internal/bench"
	"graphpulse/internal/engines"
	"graphpulse/internal/graph/gen"
)

func main() {
	var (
		expFlag      = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		tierFlag     = flag.String("tier", "tiny", "workload scale: tiny|mini|full")
		datasetFlag  = flag.String("datasets", "", "comma-separated Table IV abbreviations (WG,FB,WK,LJ,TW)")
		algFlag      = flag.String("algs", "", "comma-separated algorithms (pr,ads,sssp,bfs,cc)")
		listFlag     = flag.Bool("list", false, "list experiment ids and exit")
		csvFlag      = flag.String("csv", "", "also write the engine sweep as CSV to this path")
		parallelFlag = flag.Int("parallel", 0, "simulated-engine sweep workers (0 = GOMAXPROCS; ligra phase is always serial)")
		progressFlag = flag.Bool("progress", false, "print per-cell completion lines with elapsed time to stderr")
		telFlag      = flag.String("telemetry", "", "write the timeline experiment's series to PREFIX.csv and PREFIX.trace.json")
		cpuProfFlag  = flag.String("cpuprofile", "", "write a CPU profile of the harness to this file")
		memProfFlag  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		timeoutFlag  = flag.Duration("timeout", 0, "wall-clock limit per simulated-engine sweep job (0 = unbounded)")
		manifestFlag = flag.String("manifest", "", "maintain a resumable run manifest (JSON, rewritten atomically after each sweep job)")
		resumeFlag   = flag.Bool("resume", false, "restore completed jobs from the -manifest file instead of re-running them")
		faultsFlag   = flag.String("faults", "", "fault spec for the faults experiment, e.g. drop=1e-4,seed=7 (default: built-in rate sweep)")
		enginesFlag  = flag.String("engines", "", "comma-separated registry engines for the scaling experiment ("+engines.NamesList()+"; default solve,psolve)")
	)
	flag.Parse()

	if *cpuProfFlag != "" {
		f, err := os.Create(*cpuProfFlag)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *listFlag {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var tier gen.Tier
	switch *tierFlag {
	case "tiny":
		tier = gen.Tiny
	case "mini":
		tier = gen.Mini
	case "full":
		tier = gen.Full
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown tier %q\n", *tierFlag)
		os.Exit(2)
	}

	opt := bench.Options{
		Tier:          tier,
		Datasets:      splitList(*datasetFlag),
		Algorithms:    splitList(*algFlag),
		Out:           os.Stdout,
		CSVPath:       *csvFlag,
		Parallel:      *parallelFlag,
		TelemetryPath: *telFlag,
		Timeout:       *timeoutFlag,
		Manifest:      *manifestFlag,
		Resume:        *resumeFlag,
		FaultSpec:     *faultsFlag,
		Engines:       splitList(*enginesFlag),
	}
	if *progressFlag {
		opt.Progress = os.Stderr
	}
	if err := bench.RunExperiments(splitList(*expFlag), opt); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	if *memProfFlag != "" {
		runtime.GC()
		f, err := os.Create(*memProfFlag)
		if err != nil {
			fatal(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench: %v\n", err)
	os.Exit(1)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
