package main

import (
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b,c", []string{"a", "b", "c"}},
		{" a , b ", []string{"a", "b"}},
		{"a,,b", []string{"a", "b"}},
		{",", nil},
	}
	for _, tc := range cases {
		got := splitList(tc.in)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
