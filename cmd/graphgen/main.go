// Command graphgen generates synthetic graph workloads and writes them as
// text edge lists or the compact binary container.
//
// Usage:
//
//	graphgen -kind rmat -scale 16 -edgefactor 12 -weighted -o web.bin
//	graphgen -kind dataset -dataset LJ -tier mini -o lj.bin
//	graphgen -kind grid -width 512 -height 512 -o road.el
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"graphpulse"
)

func main() {
	var (
		kind     = flag.String("kind", "rmat", "generator: rmat|er|grid|dataset")
		scale    = flag.Int("scale", 14, "rmat: log2 vertex count")
		ef       = flag.Int("edgefactor", 12, "rmat: edges per vertex")
		n        = flag.Int("n", 10000, "er: vertex count")
		m        = flag.Int("m", 100000, "er: edge count")
		width    = flag.Int("width", 256, "grid: width")
		height   = flag.Int("height", 256, "grid: height")
		dataset  = flag.String("dataset", "LJ", "dataset: Table IV abbreviation")
		tierName = flag.String("tier", "mini", "dataset: tiny|mini|full")
		weighted = flag.Bool("weighted", true, "attach edge weights")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("o", "", "output path (.bin = binary container, else edge list); default stdout")
	)
	flag.Parse()

	g, err := generate(*kind, *scale, *ef, *n, *m, *width, *height, *dataset, *tierName, *weighted, *seed)
	if err != nil {
		fail(err)
	}
	st := graphpulse.ComputeGraphStats(g)
	fmt.Fprintf(os.Stderr, "generated %d vertices, %d edges (max degree %d, avg %.1f)\n",
		st.Vertices, st.Edges, st.MaxOutDegree, st.AvgOutDegree)

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if strings.HasSuffix(*out, ".bin") {
		err = graphpulse.WriteBinary(w, g)
	} else {
		err = graphpulse.WriteEdgeList(w, g)
	}
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		fail(err)
	}
}

func generate(kind string, scale, ef, n, m, width, height int, dataset, tierName string, weighted bool, seed int64) (*graphpulse.Graph, error) {
	switch kind {
	case "rmat":
		return graphpulse.GenerateRMAT(graphpulse.RMATParams{
			A: 0.57, B: 0.19, C: 0.19, D: 0.05,
			Scale: scale, EdgeFactor: ef, Weighted: weighted, Seed: seed,
			NoiseAmount: 0.1,
		})
	case "er":
		return graphpulse.GenerateErdosRenyi(n, m, weighted, seed)
	case "grid":
		return graphpulse.GenerateGrid(width, height, weighted, seed)
	case "dataset":
		spec, err := graphpulse.DatasetByAbbrev(strings.ToUpper(dataset))
		if err != nil {
			return nil, err
		}
		var tier graphpulse.Tier
		switch tierName {
		case "tiny":
			tier = graphpulse.Tiny
		case "mini":
			tier = graphpulse.Mini
		case "full":
			tier = graphpulse.Full
		default:
			return nil, fmt.Errorf("unknown tier %q", tierName)
		}
		return spec.Generate(tier)
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
	os.Exit(1)
}
