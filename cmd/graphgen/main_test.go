package main

import "testing"

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		kind    string
		wantN   int
		wantErr bool
	}{
		{kind: "rmat", wantN: 1 << 8},
		{kind: "er", wantN: 100},
		{kind: "grid", wantN: 16},
		{kind: "dataset", wantN: 1 << 12},
		{kind: "bogus", wantErr: true},
	}
	for _, tc := range cases {
		g, err := generate(tc.kind, 8, 4, 100, 500, 4, 4, "WG", "tiny", true, 1)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: expected error", tc.kind)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.kind, err)
			continue
		}
		if g.NumVertices() != tc.wantN {
			t.Errorf("%s: %d vertices, want %d", tc.kind, g.NumVertices(), tc.wantN)
		}
	}
}

func TestGenerateDatasetValidation(t *testing.T) {
	if _, err := generate("dataset", 8, 4, 0, 0, 0, 0, "XX", "tiny", true, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := generate("dataset", 8, 4, 0, 0, 0, 0, "WG", "huge", true, 1); err == nil {
		t.Error("unknown tier accepted")
	}
}
