// Command serve runs the graph analytics service: resident graphs
// answering algorithm queries over HTTP/JSON, with batched edge
// insertions warm-starting reconvergence from the previous fixed point
// (README "Serving").
//
// Usage:
//
//	serve -addr :8080 -graph wg=WG:tiny                 # Table IV stand-in
//	serve -graph web=crawl.el -graph social=fb.bin      # graph files
//	serve -graph wg=WG:mini -workers 8 -queue 128
//	serve -graph wg=WG:tiny -window 5m                  # sliding-window mode
//
// Endpoints: POST /v1/query, POST /v1/mutate, POST /v1/stream,
// GET /v1/graphs, GET /metrics, GET /healthz, /debug/pprof.
// SIGINT/SIGTERM drain in-flight requests (bounded by -drain) before
// exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphpulse/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "compute worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "admission queue depth; full queue answers 429")
		cacheN  = flag.Int("cache-entries", 128, "result cache capacity (LRU)")
		reqTO   = flag.Duration("request-timeout", 5*time.Second, "default per-request deadline")
		maxTO   = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		compTO  = flag.Duration("compute-timeout", 120*time.Second, "bound on one pooled computation")
		history = flag.Int("history", 8, "mutation batches retained per graph for warm starts")
		window  = flag.Duration("window", 0, "sliding-window age applied to every -graph (0 = unbounded)")
		tick    = flag.Duration("window-tick", time.Second, "period of the window expiry ticker")
		coneMax = flag.Float64("cone-fraction", 0, "deletion-cone size cap as a fraction of vertices before falling back to a full replay (0 = default)")
		sbatch  = flag.Int("stream-batch", 256, "ops per applied /v1/stream batch")
		sflight = flag.Int("stream-inflight", 2, "concurrent /v1/stream requests before 429")
		drain   = flag.Duration("drain", 10*time.Second, "shutdown drain budget for in-flight requests")
		doPprof = flag.Bool("pprof", true, "mount /debug/pprof")
	)
	var specs []serve.GraphSpec
	flag.Func("graph", "resident graph as name=SOURCE; SOURCE is ABBREV:tier (e.g. WG:tiny) or a graph file (repeatable)", func(v string) error {
		spec, err := serve.ParseGraphArg(v)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
		return nil
	})
	flag.Parse()

	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "serve: at least one -graph name=SOURCE is required (e.g. -graph wg=WG:tiny)")
		os.Exit(2)
	}
	if *window > 0 {
		for i := range specs {
			specs[i].Window = *window
		}
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv, err := serve.New(serve.Config{
		Graphs:          specs,
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheN,
		DefaultTimeout:  *reqTO,
		MaxTimeout:      *maxTO,
		ComputeTimeout:  *compTO,
		MutationHistory: *history,
		MaxConeFraction: *coneMax,
		WindowTick:      *tick,
		StreamBatch:     *sbatch,
		StreamInflight:  *sflight,
		EnablePprof:     *doPprof,
		Logf:            logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("serving on http://%s", bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	logger.Printf("signal received, draining (budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
}
