// Command serve runs the graph analytics service: resident graphs
// answering algorithm queries over HTTP/JSON, with batched edge
// insertions warm-starting reconvergence from the previous fixed point
// (README "Serving").
//
// Usage:
//
//	serve -addr :8080 -graph wg=WG:tiny                 # Table IV stand-in
//	serve -graph web=crawl.el -graph social=fb.bin      # graph files
//	serve -graph wg=WG:mini -workers 8 -queue 128
//	serve -graph wg=WG:tiny -window 5m                  # sliding-window mode
//	serve -graph big=wg.graphpack -resident-bytes 33554432
//
// A .graphpack source (cmd/graphpack) is served out-of-core and
// read-only: queries stream slices through the residency budget set by
// -resident-bytes; mutation endpoints answer errors.
//
// With -worker the process joins a distributed serving tier behind
// cmd/router (OPERATIONS.md): it registers with -router, heartbeats,
// persists snapshots to -snapshot-dir, and on startup warm-restores from
// the newest local snapshot, then from a peer via the router — instead of
// cold re-solving:
//
//	serve -worker -router http://127.0.0.1:8090 -addr 127.0.0.1:8081 \
//	      -graph wg=WG:tiny -snapshot-dir /var/lib/graphpulse/w1
//
// Endpoints: POST /v1/query, POST /v1/mutate, POST /v1/stream,
// GET /v1/graphs, GET /metrics, GET /healthz, /debug/pprof (plus
// GET /internal/snapshot in worker mode). SIGINT/SIGTERM drain in-flight
// requests (bounded by -drain) before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphpulse/internal/dserve"
	"graphpulse/internal/dserve/chaos"
	"graphpulse/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "compute worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "admission queue depth; full queue answers 429")
		cacheN  = flag.Int("cache-entries", 128, "result cache capacity (LRU)")
		reqTO   = flag.Duration("request-timeout", 5*time.Second, "default per-request deadline")
		maxTO   = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		compTO  = flag.Duration("compute-timeout", 120*time.Second, "bound on one pooled computation")
		history = flag.Int("history", 8, "mutation batches retained per graph for warm starts")
		window  = flag.Duration("window", 0, "sliding-window age applied to every -graph (0 = unbounded)")
		resideB = flag.Int64("resident-bytes", 0, "out-of-core residency budget in bytes applied to every .graphpack -graph (0 = unlimited)")
		tick    = flag.Duration("window-tick", time.Second, "period of the window expiry ticker")
		coneMax = flag.Float64("cone-fraction", 0, "deletion-cone size cap as a fraction of vertices before falling back to a full replay (0 = default)")
		sbatch  = flag.Int("stream-batch", 256, "ops per applied /v1/stream batch")
		sflight = flag.Int("stream-inflight", 2, "concurrent /v1/stream requests before 429")
		drain   = flag.Duration("drain", 10*time.Second, "shutdown drain budget for in-flight requests")
		doPprof = flag.Bool("pprof", true, "mount /debug/pprof")

		// Distributed-tier (worker mode) flags; see OPERATIONS.md.
		asWorker  = flag.Bool("worker", false, "join a distributed tier: register with -router, heartbeat, persist and restore snapshots")
		routerURL = flag.String("router", "", "router base URL to register with (worker mode)")
		advertise = flag.String("advertise", "", "base URL the router and peers reach this worker at (default: derived from the bound address)")
		snapDir   = flag.String("snapshot-dir", "", "directory for per-graph snapshot files (worker mode; empty disables persistence)")
		snapEvery = flag.Duration("snapshot-every", 30*time.Second, "snapshot persist period (worker mode)")
		heartbeat = flag.Duration("heartbeat", 5*time.Second, "router re-registration period (worker mode)")
		walDir    = flag.String("wal-dir", "", "directory for per-graph mutation WALs (worker mode; empty disables the WAL)")
		walSeg    = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size in bytes (0 = default 1MiB)")
		chaosSpec = flag.String("chaos", "", "seeded fault spec for outbound worker HTTP, e.g. drop=0.01,truncate=0.001,seed=7 (worker mode; CI/tests only)")
	)
	var specs []serve.GraphSpec
	flag.Func("graph", "resident graph as name=SOURCE; SOURCE is ABBREV:tier (e.g. WG:tiny) or a graph file (repeatable)", func(v string) error {
		spec, err := serve.ParseGraphArg(v)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
		return nil
	})
	flag.Parse()

	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "serve: at least one -graph name=SOURCE is required (e.g. -graph wg=WG:tiny)")
		os.Exit(2)
	}
	if *window > 0 {
		for i := range specs {
			specs[i].Window = *window
		}
	}
	if *resideB > 0 {
		for i := range specs {
			specs[i].ResidentBytes = *resideB
		}
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv, err := serve.New(serve.Config{
		Graphs:          specs,
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheN,
		DefaultTimeout:  *reqTO,
		MaxTimeout:      *maxTO,
		ComputeTimeout:  *compTO,
		MutationHistory: *history,
		MaxConeFraction: *coneMax,
		WindowTick:      *tick,
		StreamBatch:     *sbatch,
		StreamInflight:  *sflight,
		EnablePprof:     *doPprof,
		Logf:            logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var (
		bound      net.Addr
		workerDone chan struct{}
		workerStop context.CancelFunc
	)
	if *asWorker {
		adv := *advertise
		if adv == "" {
			adv, err = deriveAdvertise(*addr)
			if err != nil {
				logger.Fatalf("serve: cannot derive -advertise from -addr %q: %v (pass -advertise explicitly)", *addr, err)
			}
		}
		var proxy *chaos.Proxy
		if *chaosSpec != "" {
			ccfg, err := chaos.ParseSpec(*chaosSpec)
			if err != nil {
				logger.Fatal(err)
			}
			if proxy, err = chaos.New(ccfg); err != nil {
				logger.Fatal(err)
			}
			logger.Printf("chaos proxy on outbound worker HTTP: %s", *chaosSpec)
		}
		wk, err := dserve.NewWorker(dserve.WorkerConfig{
			Server:          srv,
			RouterURL:       *routerURL,
			Advertise:       adv,
			SnapshotDir:     *snapDir,
			SnapshotEvery:   *snapEvery,
			Heartbeat:       *heartbeat,
			WALDir:          *walDir,
			WALSegmentBytes: *walSeg,
			Chaos:           proxy,
			Logf:            logger.Printf,
		})
		if err != nil {
			logger.Fatal(err)
		}
		// Restore the last persisted state, then replay the WAL tail past
		// it — mutations acknowledged after the last snapshot tick — before
		// accepting traffic.
		wk.RestoreLocal()
		wk.ReplayWAL()
		bound, err = srv.StartWith(*addr, wk.Handler())
		if err != nil {
			logger.Fatal(err)
		}
		var wctx context.Context
		wctx, workerStop = context.WithCancel(context.Background())
		workerDone = make(chan struct{})
		go func() {
			defer close(workerDone)
			wk.Run(wctx)
		}()
		logger.Printf("serving (worker mode) on http://%s", bound)
	} else {
		bound, err = srv.Start(*addr)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("serving on http://%s", bound)
	}

	<-ctx.Done()
	stopSignals()
	logger.Printf("signal received, draining (budget %s)", *drain)
	if workerStop != nil {
		workerStop() // final snapshot persist happens inside Run
		<-workerDone
	}
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
}

// deriveAdvertise turns a -addr listen spec into a reachable base URL,
// mapping wildcard hosts onto loopback. A ":0" port cannot be derived —
// the port is only known after binding, so -advertise must be explicit.
func deriveAdvertise(addr string) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", err
	}
	if port == "" || port == "0" {
		return "", fmt.Errorf("listen port is dynamic")
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port), nil
}
