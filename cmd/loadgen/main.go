// Command loadgen drives a running serve instance and reports throughput
// and latency percentiles (README "Serving", EXPERIMENTS.md "Serving
// latency and throughput").
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -graph wg -alg pr -d 10s -c 8
//	loadgen -url ... -graph wg -alg sssp -root 3 -qps 2000 -mutate-every 100
//	loadgen -url ... -graph wg -mutate-every 40 -delete-every 80 -stream-every 200
//	loadgen -url ... -graph wg -d 5s -csv out.csv -min-qps 1000   # CI gate
//
// With -qps the driver is open-loop (arrivals paced at the target rate);
// without it, closed-loop (-c workers back-to-back). -min-qps exits
// non-zero when the achieved query rate falls short, -max-errors when
// hard failures (non-2xx other than 429/504) exceed the cap, and
// -min-availability when the non-error fraction drops below the floor —
// the CI smoke gates (serve-smoke and dserve-smoke). loadgen works
// unchanged against a cmd/router front: the router speaks the same /v1/*
// API as a single worker.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"graphpulse/internal/engines"
	"graphpulse/internal/loadgen"
)

func main() {
	var (
		url        = flag.String("url", "http://127.0.0.1:8080", "serve base URL")
		graph      = flag.String("graph", "", "resident graph name to target (required)")
		alg        = flag.String("alg", "pr", "algorithm: pr|ads|sssp|bfs|reach|cc|sswp|relpath")
		root       = flag.Uint("root", 0, "root vertex for rooted algorithms")
		engine     = flag.String("engine", "", "engine registry name: "+engines.NamesList()+" (default solve)")
		qps        = flag.Float64("qps", 0, "open-loop target arrival rate (0 = closed loop)")
		conc       = flag.Int("c", 8, "client concurrency")
		dur        = flag.Duration("d", 5*time.Second, "load duration")
		mutEv      = flag.Int("mutate-every", 0, "make every Nth request a mutation batch (0 = never)")
		mutEdge    = flag.Int("mutate-edges", 16, "edges per mutation/deletion batch")
		delEv      = flag.Int("delete-every", 0, "make every Nth request a deletion batch of previously inserted edges (0 = never)")
		strEv      = flag.Int("stream-every", 0, "make every Nth request a bulk NDJSON /v1/stream post (0 = never)")
		strOps     = flag.Int("stream-ops", 64, "ops per stream request")
		seed       = flag.Int64("seed", 42, "mutation edge seed")
		csvPath    = flag.String("csv", "", "write the summary as CSV to this file (atomic)")
		minQPS     = flag.Float64("min-qps", 0, "exit non-zero unless the achieved query rate reaches this")
		maxErrs    = flag.Int64("max-errors", -1, "exit non-zero when hard failures across all kinds exceed this (-1 = no gate)")
		minAvail   = flag.Float64("min-availability", 0, "exit non-zero when the non-error fraction across all kinds falls below this (0 = no gate)")
		verifyWait = flag.Duration("verify-wait", 10*time.Second, "digest convergence budget for -verify-replica")
		verifyOnly = flag.Bool("verify-only", false, "skip the load phase; only run the -verify-replica divergence check")
	)
	var verifyReplicas []string
	flag.Func("verify-replica", "after the run, verify this replica base URL agrees with the others (repeatable; exits non-zero on divergence)", func(v string) error {
		verifyReplicas = append(verifyReplicas, v)
		return nil
	})
	flag.Parse()
	if *graph == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -graph is required")
		os.Exit(2)
	}

	cfg := loadgen.Config{
		BaseURL:     *url,
		Graph:       *graph,
		Algorithm:   *alg,
		Root:        uint32(*root),
		Engine:      *engine,
		QPS:         *qps,
		Concurrency: *conc,
		Duration:    *dur,
		MutateEvery: *mutEv,
		MutateEdges: *mutEdge,
		DeleteEvery: *delEv,
		StreamEvery: *strEv,
		StreamOps:   *strOps,
		Seed:        *seed,
	}

	if *verifyOnly {
		runVerify(cfg, verifyReplicas, *verifyWait)
		return
	}

	stats, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	summary := stats.Summarize()
	summary.WriteText(os.Stdout)
	if *csvPath != "" {
		if err := summary.WriteCSVFile(*csvPath); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("summary written to %s\n", *csvPath)
	}
	if *minQPS > 0 {
		if got := summary.AchievedQPS("query"); got < *minQPS {
			fmt.Fprintf(os.Stderr, "loadgen: achieved %.1f query qps, need ≥ %.1f\n", got, *minQPS)
			os.Exit(1)
		}
	}
	if *maxErrs >= 0 {
		if got := summary.TotalErrors(); got > *maxErrs {
			fmt.Fprintf(os.Stderr, "loadgen: %d hard failures, allowed ≤ %d\n", got, *maxErrs)
			os.Exit(1)
		}
	}
	if *minAvail > 0 {
		if got := summary.Availability(); got < *minAvail {
			fmt.Fprintf(os.Stderr, "loadgen: availability %.4f, need ≥ %.4f\n", got, *minAvail)
			os.Exit(1)
		}
	}
	if len(verifyReplicas) > 0 {
		runVerify(cfg, verifyReplicas, *verifyWait)
	}
}

// runVerify runs the post-burst replica divergence check and exits
// non-zero on any mismatch.
func runVerify(cfg loadgen.Config, replicas []string, wait time.Duration) {
	if len(replicas) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -verify-only needs at least one -verify-replica")
		os.Exit(2)
	}
	rep, err := loadgen.VerifyReplicas(context.Background(), cfg, replicas, wait)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: verify:", err)
		os.Exit(1)
	}
	for _, st := range rep.Replicas {
		if st.Err != "" {
			fmt.Printf("replica %s: error: %s\n", st.URL, st.Err)
			continue
		}
		fmt.Printf("replica %s: epoch %d digest %s sum %.9g mode %s\n",
			st.URL, st.Epoch, st.Digest, st.Sum, st.Mode)
	}
	if rep.OK() {
		fmt.Printf("replicas agree on %q (converged in %s)\n", cfg.Graph, rep.Waited.Round(time.Millisecond))
		return
	}
	for _, m := range rep.Mismatches {
		fmt.Fprintln(os.Stderr, "loadgen: verify:", m)
	}
	fmt.Fprintf(os.Stderr, "loadgen: verify: %d mismatch(es) on %q\n", len(rep.Mismatches), cfg.Graph)
	os.Exit(1)
}
