// Command graphpack converts graphs into the out-of-core graphpack
// container (delta/varint-compressed CSR slices behind an mmap-backed lazy
// store, README "Out-of-core graphs") and self-checks containers for CI.
//
// Usage:
//
//	graphpack -o lj.graphpack -level 2 -slices 32 lj.el
//	graphpack -o wg.graphpack WG:tiny
//	graphpack -check -budget-frac 0.25 wg.graphpack
//
// Convert mode accepts a text edge list, a binary CSR container, or a
// Table IV "ABBREV:tier" synthetic stand-in. Check mode opens the container
// under a residency budget (-budget bytes, or -budget-frac of the decoded
// size), solves the conformance algorithms on the store with the serial and
// parallel engines, compares against the in-RAM solve, and requires at
// least one slice eviction — proving the result came through the swapping
// path. It exits non-zero on any divergence, so CI can gate on it.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/conformance"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/graph/ooc"
	"graphpulse/internal/psolve"
)

func main() {
	var (
		out    = flag.String("o", "", "output container path (convert mode)")
		level  = flag.Int("level", ooc.LevelDelta, "compression level: 0 raw, 1 varint, 2 delta")
		slices = flag.Int("slices", 16, "slice count (residency granularity)")
		refine = flag.Int("refine", 1, "partition boundary-refinement passes")
		check  = flag.Bool("check", false, "self-check an existing container instead of converting")
		budget = flag.Int64("budget", 0, "check: residency budget in bytes (0 = use -budget-frac)")
		frac   = flag.Float64("budget-frac", 0.25, "check: budget as a fraction of the decoded graph size")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fail(fmt.Errorf("want exactly one input argument, got %d", flag.NArg()))
	}
	arg := flag.Arg(0)
	if *check {
		if err := selfCheck(arg, *budget, *frac); err != nil {
			fail(err)
		}
		return
	}
	if *out == "" {
		fail(fmt.Errorf("convert mode needs -o OUTPUT.graphpack"))
	}
	if err := convert(arg, *out, ooc.WriteOptions{
		Level: *level, RawLevel: *level == ooc.LevelRaw, Slices: *slices, Refine: *refine,
	}); err != nil {
		fail(err)
	}
}

var datasetRE = regexp.MustCompile(`^([A-Za-z]{2,3}):(tiny|mini|full)$`)

// loadInput materializes the input argument: a Table IV dataset stand-in or
// a graph file (binary container detected by magic).
func loadInput(arg string) (*graph.CSR, error) {
	if m := datasetRE.FindStringSubmatch(arg); m != nil {
		ds, err := gen.DatasetByAbbrev(strings.ToUpper(m[1]))
		if err != nil {
			return nil, err
		}
		var tier gen.Tier
		switch m[2] {
		case "tiny":
			tier = gen.Tiny
		case "mini":
			tier = gen.Mini
		case "full":
			tier = gen.Full
		}
		return ds.Generate(tier)
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if magic, err := br.Peek(8); err == nil && binary.LittleEndian.Uint64(magic) == 0x47504353 {
		return graph.ReadBinary(br)
	}
	return graph.ReadEdgeList(br, 0)
}

func convert(in, out string, opt ooc.WriteOptions) error {
	g, err := loadInput(in)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := ooc.Write(bw, g, opt); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	dec := decodedBytes(g)
	fmt.Fprintf(os.Stderr, "packed %d vertices, %d edges at level %d: %d container bytes, %d decoded bytes (%.2fx)\n",
		g.NumVertices(), g.NumEdges(), opt.Level, fi.Size(), dec, float64(dec)/float64(fi.Size()))
	return nil
}

// decodedBytes is the in-RAM footprint of g, charged the way the store
// charges resident slices.
func decodedBytes(g *graph.CSR) int64 {
	b := int64(len(g.RowPtr))*8 + int64(len(g.Dst))*4
	if g.Weight != nil {
		b += int64(len(g.Weight)) * 4
	}
	return b
}

// selfCheck is the CI ooc-smoke gate: every conformance algorithm must
// produce the in-RAM result from the budgeted store, with evictions.
func selfCheck(path string, budget int64, frac float64) error {
	probe, err := ooc.Open(path, 0)
	if err != nil {
		return err
	}
	csr := graph.Materialize(probe)
	probe.Close()
	if budget <= 0 {
		budget = int64(float64(decodedBytes(csr)) * frac)
	}
	st, err := ooc.Open(path, budget)
	if err != nil {
		return err
	}
	defer st.Close()
	st.ResetCounters()

	root := conformance.BestRoot(csr)
	for _, c := range conformance.Algorithms() {
		if c.Prepare != nil {
			// Prepared variants (inbound-normalized weights) are derived
			// graphs, not the stored one; the store serves the graph as
			// packed, so those cases are exercised by the conformance suite
			// on materialized CSRs instead.
			continue
		}
		mk := func() algorithms.Algorithm { return c.New(root) }
		want := algorithms.Solve(csr, mk())
		tol := conformance.Tolerance(mk(), csr)
		got := algorithms.Solve(st, mk())
		if err := conformance.CompareValues("ooc solve/"+c.Name, got.Values, want.Values, tol); err != nil {
			return err
		}
		pres, err := psolve.SolveCtx(nil, st, mk(), psolve.DefaultConfig())
		if err != nil {
			return err
		}
		if err := conformance.CompareValues("ooc psolve/"+c.Name, pres.Values, want.Values, tol); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "check %-20s ok (solve + psolve match in-RAM within %.2g)\n", c.Name, tol)
	}
	c := st.Counters()
	fmt.Fprintf(os.Stderr, "ooc_slice_decodes=%d ooc_slice_evictions=%d ooc_hits=%d ooc_resident_bytes=%d ooc_resident_slices=%d ooc_decoded_bytes=%d\n",
		c.Decodes, c.Evictions, c.Hits, c.ResidentBytes, c.ResidentSlices, c.DecodedBytes)
	if budget < decodedBytes(csr) && c.Evictions == 0 {
		return fmt.Errorf("graphpack: budget %d below decoded size %d but no evictions — residency manager not exercised",
			budget, decodedBytes(csr))
	}
	fmt.Fprintf(os.Stderr, "self-check passed: budget %d bytes (%.0f%% of %d decoded)\n",
		budget, 100*float64(budget)/float64(decodedBytes(csr)), decodedBytes(csr))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphpack:", err)
	os.Exit(1)
}
