// Command graphpulse runs one algorithm over one graph on a chosen engine
// and reports the converged values and architecture measurements.
//
// Usage:
//
//	graphpulse -alg sssp -root 3 -graph web.el            # accelerator (optimized)
//	graphpulse -alg pr -engine ligra -rmat 16x12          # host software baseline
//	graphpulse -alg cc -engine graphicionado -rmat 14x8   # BSP accelerator model
//	graphpulse -alg bfs -engine solve -graph web.bin      # reference worklist solver
//
// Graphs come from -graph (text edge list, or binary container if the file
// starts with the GPCS magic) or -rmat SCALExEDGEFACTOR (deterministic
// synthetic). -top prints the N highest-valued vertices.
//
// -telemetry PREFIX samples the simulated engines (accel, accel-base,
// graphicionado) every 512 cycles and writes PREFIX.csv plus
// PREFIX.trace.json — the latter loads in chrome://tracing and Perfetto
// (see METRICS.md and EXPERIMENTS.md "Time-resolved figures").
// -cpuprofile/-memprofile write Go pprof profiles of the simulator itself.
//
// Robustness controls (README "Robustness & fault injection"):
//
//	graphpulse -alg pr -rmat 16x12 -faults drop=1e-4,seed=7    # seeded fault injection
//	graphpulse -alg sssp -rmat 16x12 -checkpoint run.ck        # periodic checkpoints
//	graphpulse -alg sssp -rmat 16x12 -resume run.ck            # continue from one
//	graphpulse -alg pr -rmat 20x16 -timeout 5m                 # wall-clock bound
package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"graphpulse"
	"graphpulse/internal/atomicio"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to an edge-list or binary graph file")
		rmat      = flag.String("rmat", "", "generate an R-MAT graph, format SCALExEDGEFACTOR (e.g. 16x12)")
		seed      = flag.Int64("seed", 42, "generator seed")
		algName   = flag.String("alg", "pr", "algorithm: pr|ads|sssp|bfs|reach|cc|sswp")
		root      = flag.Uint("root", 0, "root vertex for sssp/bfs/reach/sswp")
		engine    = flag.String("engine", "accel", "engine: accel|accel-base|ligra|graphicionado|solve")
		slices    = flag.Int("slices", 1, "force partitioned accelerator execution into N slices")
		top       = flag.Int("top", 5, "print the N highest-valued vertices")
		stats     = flag.Bool("stats", true, "print architecture measurements")
		telPrefix = flag.String("telemetry", "", "write time-series telemetry to PREFIX.csv and PREFIX.trace.json (simulated engines only)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the simulator to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		faultSpec = flag.String("faults", "", "inject seeded deterministic faults, e.g. drop=1e-4,bitflip=1e-5,seed=7 (accel engines; dram class also applies to graphicionado)")
		ckPath    = flag.String("checkpoint", "", "periodically write a restartable checkpoint to this file (accel engines only)")
		ckEvery   = flag.Uint64("checkpoint-every", 1_000_000, "cycles between checkpoints (with -checkpoint)")
		resumeCk  = flag.String("resume", "", "resume an accel run from a checkpoint file (same graph/alg/config required)")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit for simulated engines (0 = unbounded)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	g, err := loadGraph(*graphPath, *rmat, *seed)
	if err != nil {
		fail(err)
	}
	alg, err := makeAlg(*algName, graphpulse.VertexID(*root), g)
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph: %d vertices, %d edges; algorithm: %s; engine: %s\n",
		g.NumVertices(), g.NumEdges(), alg.Name(), *engine)

	var faults graphpulse.FaultConfig
	if *faultSpec != "" {
		if faults, err = graphpulse.ParseFaultSpec(*faultSpec); err != nil {
			fail(err)
		}
	}
	opts := graphpulse.RunOptions{}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Ctx = ctx
	}

	var values []float64
	switch *engine {
	case "accel", "accel-base":
		cfg := graphpulse.OptimizedConfig()
		if *engine == "accel-base" {
			cfg = graphpulse.BaselineConfig()
		}
		if *slices > 1 {
			cfg.QueueCapacity = (g.NumVertices() + *slices - 1) / *slices
		}
		if *telPrefix != "" {
			cfg.Telemetry = graphpulse.DefaultTelemetryConfig()
		}
		cfg.Fault = faults
		if *ckPath != "" {
			opts.CheckpointEvery = *ckEvery
			opts.OnCheckpoint = func(ck *graphpulse.Checkpoint) error {
				return graphpulse.WriteCheckpoint(*ckPath, ck)
			}
		}
		var res *graphpulse.Result
		if *resumeCk != "" {
			ck, err := graphpulse.ReadCheckpoint(*resumeCk)
			if err != nil {
				fail(err)
			}
			fmt.Printf("resuming from %s: cycle %d, round %d, %d queued + %d spilled events\n",
				*resumeCk, ck.Cycle, ck.Round, len(ck.Queue), spillTotal(ck))
			res, err = graphpulse.ResumeFromCheckpoint(cfg, g, alg, ck, opts)
			if err != nil {
				fail(err)
			}
		} else {
			if res, err = graphpulse.RunWith(cfg, g, alg, opts); err != nil {
				fail(err)
			}
		}
		values = res.Values
		if *stats {
			fmt.Printf("cycles: %d (%.3f ms at 1 GHz); rounds: %d; slices: %d\n",
				res.Cycles, res.Seconds*1e3, res.Rounds, res.Slices)
			fmt.Printf("events: processed %d, emitted %d, coalesced %d (%.1f%%)\n",
				res.EventsProcessed, res.EventsEmitted, res.EventsCoalesced,
				100*float64(res.EventsCoalesced)/float64(res.EventsEmitted+1))
			fmt.Printf("off-chip: %d reads, %d writes, %.1f%% of bytes utilized\n",
				res.MemReads, res.MemWrites, 100*res.Utilization)
			if res.FaultsInjected != nil {
				fmt.Printf("faults injected: %s; redelivered %d, dram retries %d, spill-recovered %d\n",
					graphpulse.FormatFaultSnapshot(res.FaultsInjected),
					res.RedeliveredEvents, res.MemRetries, res.SpillRecovered)
			}
		}
		if *telPrefix != "" {
			if err := writeTelemetry(res.Telemetry, *telPrefix, cfg.ClockHz); err != nil {
				fail(err)
			}
		}
	case "ligra":
		start := time.Now()
		res := graphpulse.RunLigra(graphpulse.DefaultLigraConfig(), g, alg)
		wall := time.Since(start)
		values = res.Values
		if *stats {
			fmt.Printf("wall time: %v; iterations: %d (push %d / pull %d); edges traversed: %d\n",
				wall, res.Iterations, res.PushIterations, res.PullIterations, res.EdgesTraversed)
		}
	case "graphicionado":
		gcfg := graphpulse.DefaultGraphicionadoConfig()
		if *telPrefix != "" {
			gcfg.Telemetry = graphpulse.DefaultTelemetryConfig()
		}
		gcfg.Fault = faults
		res, err := graphpulse.RunGraphicionadoCtx(opts.Ctx, gcfg, g, alg)
		if err != nil {
			fail(err)
		}
		values = res.Values
		if *stats {
			fmt.Printf("cycles: %d (%.3f ms at 1 GHz); iterations: %d; edge reads: %d\n",
				res.Cycles, res.Seconds*1e3, res.Iterations, res.MemReads)
		}
		if *telPrefix != "" {
			if err := writeTelemetry(res.Telemetry, *telPrefix, gcfg.ClockHz); err != nil {
				fail(err)
			}
		}
	case "solve":
		start := time.Now()
		res := graphpulse.Solve(g, alg)
		wall := time.Since(start)
		values = res.Values
		if *stats {
			fmt.Printf("wall time: %v; activations: %d; emitted: %d\n", wall, res.Activations, res.Emitted)
		}
	default:
		fail(fmt.Errorf("unknown engine %q", *engine))
	}
	if *telPrefix != "" && (*engine == "ligra" || *engine == "solve") {
		fmt.Fprintf(os.Stderr, "graphpulse: -telemetry is ignored for the host-native %s engine\n", *engine)
	}

	printTop(values, *top)

	if *memProf != "" {
		runtime.GC()
		f, err := os.Create(*memProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}
}

// writeTelemetry exports a run's sampled series as PREFIX.csv and
// PREFIX.trace.json (Chrome trace_event, loadable in Perfetto). Each file
// is written atomically so an interrupted export never leaves a truncated
// file behind.
func writeTelemetry(rec *graphpulse.Telemetry, prefix string, clockHz float64) error {
	csvPath := prefix + ".csv"
	if err := atomicio.WriteFile(csvPath, func(w io.Writer) error { return rec.WriteCSV(w) }); err != nil {
		return err
	}
	tracePath := prefix + ".trace.json"
	if err := atomicio.WriteFile(tracePath, func(w io.Writer) error { return rec.WriteChromeTrace(w, clockHz) }); err != nil {
		return err
	}
	fmt.Printf("telemetry: %d series × %d samples (%d-cycle interval) → %s, %s\n",
		len(rec.Series()), rec.SampleCount(), rec.Interval(), csvPath, tracePath)
	return nil
}

// spillTotal counts a checkpoint's spilled events across slices.
func spillTotal(ck *graphpulse.Checkpoint) int {
	n := 0
	for _, s := range ck.Spill {
		n += len(s)
	}
	return n
}

func loadGraph(path, rmat string, seed int64) (*graphpulse.Graph, error) {
	switch {
	case path != "" && rmat != "":
		return nil, fmt.Errorf("use -graph or -rmat, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		br := bufio.NewReader(f)
		magic, err := br.Peek(8)
		if err == nil && len(magic) == 8 && binary.LittleEndian.Uint64(magic) == 0x47504353 {
			return graphpulse.ReadBinary(br)
		}
		return graphpulse.ReadEdgeList(br, 0)
	case rmat != "":
		parts := strings.SplitN(rmat, "x", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -rmat %q, want SCALExEDGEFACTOR", rmat)
		}
		scale, err1 := strconv.Atoi(parts[0])
		ef, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad -rmat %q", rmat)
		}
		return graphpulse.GenerateRMAT(graphpulse.RMATParams{
			A: 0.57, B: 0.19, C: 0.19, D: 0.05,
			Scale: scale, EdgeFactor: ef, Weighted: true, Seed: seed,
			NoiseAmount: 0.1,
		})
	default:
		return nil, fmt.Errorf("provide -graph FILE or -rmat SCALExEDGEFACTOR")
	}
}

func makeAlg(name string, root graphpulse.VertexID, g *graphpulse.Graph) (graphpulse.Algorithm, error) {
	if int(root) >= g.NumVertices() {
		return nil, fmt.Errorf("root %d out of range (n=%d)", root, g.NumVertices())
	}
	switch name {
	case "pr":
		return graphpulse.NewPageRankDelta(), nil
	case "ads":
		return graphpulse.NewAdsorption(), nil
	case "sssp":
		return graphpulse.NewSSSP(root), nil
	case "bfs":
		return graphpulse.NewBFS(root), nil
	case "reach":
		return graphpulse.NewReach(root), nil
	case "cc":
		return graphpulse.NewConnectedComponents(), nil
	case "sswp":
		return graphpulse.NewSSWP(root), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func printTop(values []float64, n int) {
	if n <= 0 {
		return
	}
	type vv struct {
		v graphpulse.VertexID
		x float64
	}
	all := make([]vv, len(values))
	for i, x := range values {
		all[i] = vv{graphpulse.VertexID(i), x}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].x > all[j].x })
	if n > len(all) {
		n = len(all)
	}
	fmt.Printf("top %d vertices:\n", n)
	for _, e := range all[:n] {
		fmt.Printf("  v%-10d %g\n", e.v, e.x)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "graphpulse: %v\n", err)
	os.Exit(1)
}
