package main

import (
	"os"
	"path/filepath"
	"testing"

	"graphpulse"
)

func TestLoadGraphRMAT(t *testing.T) {
	g, err := loadGraph("", "8x4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 256 || g.NumEdges() != 1024 {
		t.Errorf("got %d/%d, want 256/1024", g.NumVertices(), g.NumEdges())
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := loadGraph("", "", 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadGraph("x", "8x4", 1); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadGraph("", "bogus", 1); err == nil {
		t.Error("bad rmat spec accepted")
	}
	if _, err := loadGraph("", "axb", 1); err == nil {
		t.Error("non-numeric rmat spec accepted")
	}
	if _, err := loadGraph("/nonexistent/file", "", 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadGraphFiles(t *testing.T) {
	dir := t.TempDir()
	g, err := graphpulse.NewGraph(3, []graphpulse.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Text edge list.
	elPath := filepath.Join(dir, "g.el")
	f, err := os.Create(elPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphpulse.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadGraph(elPath, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 2 {
		t.Errorf("text load: %d edges", got.NumEdges())
	}
	// Binary container (auto-detected by magic).
	binPath := filepath.Join(dir, "g.bin")
	fb, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphpulse.WriteBinary(fb, g); err != nil {
		t.Fatal(err)
	}
	fb.Close()
	got2, err := loadGraph(binPath, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumEdges() != 2 {
		t.Errorf("binary load: %d edges", got2.NumEdges())
	}
}

func TestMakeAlg(t *testing.T) {
	g, err := loadGraph("", "6x2", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pr", "ads", "sssp", "bfs", "reach", "cc", "sswp"} {
		alg, err := makeAlg(name, 0, g)
		if err != nil {
			t.Errorf("makeAlg(%s): %v", name, err)
			continue
		}
		if alg.Name() == "" {
			t.Errorf("makeAlg(%s): empty name", name)
		}
	}
	if _, err := makeAlg("bogus", 0, g); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := makeAlg("bfs", 1<<20, g); err == nil {
		t.Error("out-of-range root accepted")
	}
}
