// Command router fronts a distributed serving tier: it consistent-hashes
// /v1/query and /v1/mutate by graph name across N cmd/serve workers
// (started with -worker), replicates writes, retries failed reads on the
// next replica, and health-checks the fleet — OPERATIONS.md is the
// deployment runbook.
//
// Usage:
//
//	router -addr :8090 -replication 2 \
//	       -worker http://127.0.0.1:8081 -worker http://127.0.0.1:8082
//
// Workers normally join dynamically by registering (serve -worker
// -router http://...:8090); -worker seeds are optional static entries.
//
// Endpoints: the worker-compatible POST /v1/query, POST /v1/mutate,
// POST /v1/stream and GET /v1/graphs (merged across workers), plus
// GET /healthz, GET /metrics (router_* names, METRICS.md), and the
// control plane POST /internal/register, GET /internal/workers,
// POST /internal/drain. SIGINT/SIGTERM drain in-flight requests before
// exit.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphpulse/internal/dserve"
	"graphpulse/internal/dserve/chaos"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		repl      = flag.Int("replication", 1, "workers owning each graph (writes fan out to all, reads rotate)")
		vnodes    = flag.Int("vnodes", 64, "virtual nodes per worker on the consistent-hash ring")
		probeInt  = flag.Duration("probe-interval", time.Second, "health-probe period for healthy workers")
		probeTO   = flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		failAfter = flag.Int("fail-after", 2, "consecutive failures before a worker is ejected")
		retries   = flag.Int("retry-budget", 2, "extra replicas a failed read is retried on")
		backoff   = flag.Duration("backoff", 500*time.Millisecond, "base re-probe backoff for ejected workers")
		backoffMx = flag.Duration("backoff-max", 15*time.Second, "cap on the ejected-worker re-probe backoff")
		drain     = flag.Duration("drain", 10*time.Second, "shutdown drain budget for in-flight requests")
		fanout    = flag.Int("fanout", 0, "concurrent replicas per write fan-out (0 = default 4)")
		seed      = flag.Uint64("seed", 1, "seed for backoff jitter (and any other router randomness)")
		aeEvery   = flag.Duration("antientropy", 5*time.Second, "anti-entropy divergence-check period (0 disables)")
		chaosSpec = flag.String("chaos", "", "chaos fault injection spec, e.g. seed=7,drop=0.05,delay=0.1,delay-ms=50,truncate=0.02 (empty disables; testing only)")
	)
	var seeds []string
	flag.Func("worker", "seed worker base URL (repeatable; workers can also self-register)", func(v string) error {
		seeds = append(seeds, v)
		return nil
	})
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	var proxy *chaos.Proxy
	if *chaosSpec != "" {
		ccfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			logger.Fatalf("router: bad -chaos spec: %v", err)
		}
		proxy, err = chaos.New(ccfg)
		if err != nil {
			logger.Fatalf("router: bad -chaos spec: %v", err)
		}
		logger.Printf("chaos fault injection enabled: %s", *chaosSpec)
	}
	aeInterval := *aeEvery
	if aeInterval == 0 {
		aeInterval = -1 // flag 0 means "off"; config 0 means "default"
	}
	rt, err := dserve.NewRouter(dserve.RouterConfig{
		Workers:             seeds,
		Replication:         *repl,
		VirtualNodes:        *vnodes,
		ProbeInterval:       *probeInt,
		ProbeTimeout:        *probeTO,
		FailAfter:           *failAfter,
		RetryBudget:         *retries,
		BackoffBase:         *backoff,
		BackoffMax:          *backoffMx,
		FanoutConcurrency:   *fanout,
		Seed:                *seed,
		AntiEntropyInterval: aeInterval,
		Chaos:               proxy,
		Logf:                logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	bound, err := rt.Start(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("routing on http://%s (replication %d, %d seed workers)", bound, *repl, len(seeds))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	logger.Printf("signal received, draining (budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := rt.Shutdown(dctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
}
