// Package graphpulse is a faithful software reproduction of GraphPulse
// (Rahman, Abu-Ghazaleh, Gupta — MICRO 2020): an event-driven hardware
// accelerator for asynchronous graph processing, modeled at cycle level,
// together with the delta-accumulative algorithm framework it executes and
// the two baselines the paper evaluates against (a Ligra-style software
// framework and a Graphicionado-style BSP accelerator model).
//
// This package is the public facade: it re-exports the stable surface of
// the internal packages so applications depend on one import path.
//
// # Quick start
//
//	g, _ := graphpulse.GenerateRMAT(graphpulse.RMATParams{
//	    A: 0.57, B: 0.19, C: 0.19, D: 0.05, Scale: 14, EdgeFactor: 12,
//	    Weighted: true, Seed: 42,
//	})
//	res, _ := graphpulse.Run(graphpulse.OptimizedConfig(), g,
//	    graphpulse.NewPageRankDelta())
//	fmt.Printf("converged in %d cycles (%.3f ms at 1 GHz)\n",
//	    res.Cycles, res.Seconds*1e3)
//
// # Structure
//
//   - Graphs: CSR storage ([Graph]), loaders, and deterministic workload
//     generators calibrated to the paper's Table IV datasets.
//   - Algorithms: the Table II delta-accumulative applications (PageRank-
//     Delta, Adsorption, SSSP, BFS, Connected Components) plus extensions,
//     all defined by propagate/reduce/init/terminate functions.
//   - Accelerator: the GraphPulse model — coalescing event queues, round
//     scheduler, event processors, decoupled generation streams, prefetcher,
//     DRAM timing model, and large-graph slicing.
//   - Baselines: [RunLigra] (host-parallel software) and
//     [RunGraphicionado] (simulated BSP accelerator).
//   - Energy: the Table V power/area model.
package graphpulse

import (
	"context"
	"io"

	"graphpulse/internal/algorithms"
	"graphpulse/internal/baseline/graphicionado"
	"graphpulse/internal/baseline/ligra"
	"graphpulse/internal/core"
	"graphpulse/internal/energy"
	"graphpulse/internal/graph"
	"graphpulse/internal/graph/gen"
	"graphpulse/internal/psolve"
	"graphpulse/internal/serve"
	"graphpulse/internal/sim"
	"graphpulse/internal/sim/fault"
	"graphpulse/internal/sim/telemetry"
)

// Graph is an immutable directed graph in Compressed Sparse Row form.
type Graph = graph.CSR

// Edge is a single directed, optionally weighted edge.
type Edge = graph.Edge

// VertexID identifies a vertex (graphs are labeled 0..NumVertices-1).
type VertexID = graph.VertexID

// GraphStats summarizes a graph's shape (Table IV reporting).
type GraphStats = graph.Stats

// NewGraph builds a CSR graph from an edge list.
func NewGraph(numVertices int, edges []Edge, weighted bool) (*Graph, error) {
	return graph.FromEdges(numVertices, edges, weighted)
}

// ReadEdgeList parses a SNAP-style text edge list.
func ReadEdgeList(r io.Reader, vertexHint int) (*Graph, error) {
	return graph.ReadEdgeList(r, vertexHint)
}

// WriteEdgeList emits a graph as a text edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadBinary loads a graph from the compact binary container.
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteBinary stores a graph in the compact binary container.
func WriteBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// ComputeGraphStats scans a graph and summarizes its shape.
func ComputeGraphStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// RMATParams configures the R-MAT synthetic graph generator.
type RMATParams = gen.RMATParams

// GenerateRMAT builds a deterministic R-MAT graph.
func GenerateRMAT(p RMATParams) (*Graph, error) { return gen.RMAT(p) }

// GenerateErdosRenyi builds a uniform random graph with n vertices and m
// edges.
func GenerateErdosRenyi(n, m int, weighted bool, seed int64) (*Graph, error) {
	return gen.ErdosRenyi(n, m, weighted, seed)
}

// GenerateGrid builds a 4-neighbor grid (road-network-like topology).
func GenerateGrid(width, height int, weighted bool, seed int64) (*Graph, error) {
	return gen.Grid2D(width, height, weighted, seed)
}

// DatasetSpec describes one of the paper's Table IV workloads and its
// synthetic stand-in.
type DatasetSpec = gen.DatasetSpec

// Tier selects the size class of a dataset stand-in (Tiny/Mini/Full).
type Tier = gen.Tier

// Dataset size tiers. Full matches the paper's dataset scales; Mini is the
// benchmarking default; Tiny is for tests.
const (
	Tiny = gen.Tiny
	Mini = gen.Mini
	Full = gen.Full
)

// Datasets lists the five Table IV workloads (WG, FB, WK, LJ, TW).
func Datasets() []DatasetSpec { return gen.Datasets }

// DatasetByAbbrev returns the Table IV workload with the given abbreviation.
func DatasetByAbbrev(abbrev string) (DatasetSpec, error) { return gen.DatasetByAbbrev(abbrev) }

// Algorithm is a delta-accumulative graph computation (paper Section II-B):
// a commutative/associative reduce with identity, plus a per-edge propagate.
type Algorithm = algorithms.Algorithm

// EdgeContext carries per-edge information to propagate functions.
type EdgeContext = algorithms.EdgeContext

// Algorithm constructors (the Table II mappings plus extensions).
var (
	// NewPageRankDelta is incremental PageRank (propagate α·δ/N, reduce +).
	NewPageRankDelta = algorithms.NewPageRankDelta
	// NewAdsorption is weighted label propagation (propagate α·E·δ, reduce +).
	NewAdsorption = algorithms.NewAdsorption
	// NewSSSP is single-source shortest paths (propagate E+δ, reduce min).
	NewSSSP = algorithms.NewSSSP
	// NewBFS is hop-level breadth-first search (propagate δ+1, reduce min).
	NewBFS = algorithms.NewBFS
	// NewReach is reachability, the literal Table II BFS row (propagate 0).
	NewReach = algorithms.NewReach
	// NewConnectedComponents is max-label propagation (propagate δ, reduce max).
	NewConnectedComponents = algorithms.NewConnectedComponents
	// NewSSWP is single-source widest path (propagate min(δ,E), reduce max).
	NewSSWP = algorithms.NewSSWP
	// NewReliablePath is most-reliable path (propagate δ·E, reduce max).
	NewReliablePath = algorithms.NewReliablePath
)

// Solve runs an algorithm to convergence with the sequential reference
// worklist engine — the golden model the hardware simulations are verified
// against. Use it when you want answers, not architecture measurements.
func Solve(g *Graph, alg Algorithm) *SolveResult { return algorithms.Solve(g, alg) }

// SolveCtx runs like Solve with wall-clock cancellation: when ctx is
// canceled it stops and returns an error wrapping ErrCanceled, the same
// sentinel the simulated engines use. A nil ctx never fails.
func SolveCtx(ctx context.Context, g *Graph, alg Algorithm) (*SolveResult, error) {
	return algorithms.SolveCtx(ctx, g, alg)
}

// SolveResult is the reference solver's output.
type SolveResult = algorithms.SolveResult

// ParallelConfig tunes the sharded parallel native solver. The zero value
// selects the documented defaults (GOMAXPROCS workers).
type ParallelConfig = psolve.Config

// ParallelResult is the parallel solver's output: converged values plus the
// cross-shard exchange counters documented in METRICS.md ("Parallel solver
// metrics").
type ParallelResult = psolve.Result

// SolveParallel runs an algorithm to convergence with the sharded parallel
// native solver: the vertex set split into contiguous shards (one per
// worker), per-shard coalescing worklists, and batched cross-shard delta
// exchange. Results agree with Solve within the conformance tolerance —
// exactly, for the monotone min/max algorithms. Use it when you want
// answers faster on a multi-core host.
func SolveParallel(g *Graph, alg Algorithm, cfg ParallelConfig) *ParallelResult {
	return psolve.Solve(g, alg, cfg)
}

// SolveParallelCtx runs like SolveParallel with wall-clock cancellation
// under the same ErrCanceled contract as SolveCtx.
func SolveParallelCtx(ctx context.Context, g *Graph, alg Algorithm, cfg ParallelConfig) (*ParallelResult, error) {
	return psolve.SolveCtx(ctx, g, alg, cfg)
}

// IncrementalAfterInsert prepares incremental recomputation after edge
// insertions: given a converged state on `old`, it returns the post-update
// graph and a warm-started algorithm seeded with exactly the correction
// events the new edges introduce. Run the pair on any engine; the fixed
// point matches a cold start on the new graph at a fraction of the work.
// Supported by the path/label algorithms and PageRank-Delta.
func IncrementalAfterInsert(alg Algorithm, old *Graph, added []Edge, state []float64) (*Graph, Algorithm, error) {
	return algorithms.IncrementalAfterInsert(alg, old, added, state)
}

// Config describes a GraphPulse accelerator build.
type Config = core.Config

// Result is an accelerator run's converged values plus every measurement
// the paper's figures are built from.
type Result = core.Result

// RoundStats records one scheduler round (Figures 4 and 8).
type RoundStats = core.RoundStats

// OptimizedConfig is the paper's full GraphPulse design (Table III +
// Section V optimizations) — the headline configuration.
func OptimizedConfig() Config { return core.OptimizedConfig() }

// BaselineConfig is the unoptimized GraphPulse of Section IV.
func BaselineConfig() Config { return core.BaselineConfig() }

// Run simulates the GraphPulse accelerator executing alg over g.
func Run(cfg Config, g *Graph, alg Algorithm) (*Result, error) {
	a, err := core.New(cfg, g, alg)
	if err != nil {
		return nil, err
	}
	return a.Run()
}

// RunOptions adds run control to an accelerator simulation: wall-clock
// cancellation via a context, and periodic checkpoints taken at scheduler
// round barriers.
type RunOptions = core.RunOptions

// RunWith simulates like Run with cancellation and checkpointing.
func RunWith(cfg Config, g *Graph, alg Algorithm, opts RunOptions) (*Result, error) {
	a, err := core.New(cfg, g, alg)
	if err != nil {
		return nil, err
	}
	return a.RunWithOptions(opts)
}

// Checkpoint is a restartable snapshot of an accelerator run, taken at a
// scheduler round barrier (see RunOptions.CheckpointEvery).
type Checkpoint = core.Checkpoint

// WriteCheckpoint atomically serializes a checkpoint to path.
func WriteCheckpoint(path string, ck *Checkpoint) error { return core.WriteCheckpoint(path, ck) }

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(path string) (*Checkpoint, error) { return core.ReadCheckpoint(path) }

// ResumeFromCheckpoint continues a checkpointed run to completion. Config,
// graph, and algorithm must match the original run. The resumed run
// converges to the same values as the uninterrupted one.
func ResumeFromCheckpoint(cfg Config, g *Graph, alg Algorithm, ck *Checkpoint, opts RunOptions) (*Result, error) {
	a, err := core.NewFromCheckpoint(cfg, g, alg, ck)
	if err != nil {
		return nil, err
	}
	return a.RunWithOptions(opts)
}

// FaultConfig enables seeded deterministic fault injection in a simulated
// engine (Config.Fault, ClusterConfig.Chip.Fault,
// GraphicionadoConfig.Fault). The zero value disables it at zero cost.
type FaultConfig = fault.Config

// ParseFaultSpec parses a "drop=1e-4,bitflip=1e-5,seed=7" fault spec.
func ParseFaultSpec(spec string) (FaultConfig, error) { return fault.ParseSpec(spec) }

// FormatFaultSnapshot renders an injected-fault count map
// (Result.FaultsInjected, ConservationError.Faults) as "point=count ...".
func FormatFaultSnapshot(snap map[string]int64) string { return fault.FormatSnapshot(snap) }

// ConservationError reports an event-conservation violation detected by the
// accelerator's watchdog, with the full audit (counters, resident
// breakdown, injected-fault snapshot). It wraps ErrConservation.
type ConservationError = core.ConservationError

// Sentinel errors for simulated runs; test with errors.Is.
var (
	// ErrDeadline: the simulation exceeded Config.MaxCycles.
	ErrDeadline = sim.ErrDeadline
	// ErrCanceled: the run context expired (RunOptions.Ctx).
	ErrCanceled = sim.ErrCanceled
	// ErrConservation: events were lost or double-counted (the watchdog
	// tripped); errors.As to *ConservationError for the audit.
	ErrConservation = core.ErrConservation
)

// TelemetryConfig enables time-resolved sampling of a simulated engine
// (Config.Telemetry / GraphicionadoConfig.Telemetry): queue occupancy,
// event rates, DRAM traffic and stalls, every N cycles into bounded series.
// The zero value disables it at zero cost. See METRICS.md for the series.
type TelemetryConfig = telemetry.Config

// Telemetry is a run's sampled time series (Result.Telemetry; nil unless
// enabled). Export with WriteCSV or WriteChromeTrace — the latter loads in
// chrome://tracing and Perfetto.
type Telemetry = telemetry.Recorder

// TelemetrySeries is one exported probe timeline.
type TelemetrySeries = telemetry.Series

// DefaultTelemetryConfig is the sampling setup the -telemetry CLI flags use
// (512-cycle interval, ≤4096 points per series with decimation).
func DefaultTelemetryConfig() TelemetryConfig { return telemetry.Default() }

// LigraConfig tunes the Ligra-style software baseline.
type LigraConfig = ligra.Config

// LigraResult is the software baseline's output (wall-clock timing is the
// caller's responsibility; the engine runs natively).
type LigraResult = ligra.Result

// DefaultLigraConfig mirrors Ligra's published defaults.
func DefaultLigraConfig() LigraConfig { return ligra.DefaultConfig() }

// RunLigra executes alg under the direction-optimizing BSP software
// framework on the host.
func RunLigra(cfg LigraConfig, g *Graph, alg Algorithm) *LigraResult {
	return ligra.New(cfg, g).Run(alg)
}

// GraphicionadoConfig tunes the Graphicionado baseline model.
type GraphicionadoConfig = graphicionado.Config

// GraphicionadoResult is the Graphicionado model's output.
type GraphicionadoResult = graphicionado.Result

// DefaultGraphicionadoConfig mirrors the paper's baseline setup.
func DefaultGraphicionadoConfig() GraphicionadoConfig { return graphicionado.DefaultConfig() }

// RunGraphicionado simulates the Graphicionado-style BSP accelerator.
func RunGraphicionado(cfg GraphicionadoConfig, g *Graph, alg Algorithm) (*GraphicionadoResult, error) {
	return graphicionado.Run(cfg, g, alg)
}

// RunGraphicionadoCtx runs like RunGraphicionado with wall-clock
// cancellation (nil ctx = no cancellation).
func RunGraphicionadoCtx(ctx context.Context, cfg GraphicionadoConfig, g *Graph, alg Algorithm) (*GraphicionadoResult, error) {
	return graphicionado.RunCtx(ctx, cfg, g, alg)
}

// ClusterConfig sizes a multi-accelerator system (Section IV-F's
// unexplored option b: one chip per slice, events streamed between chips).
type ClusterConfig = core.ClusterConfig

// ClusterResult aggregates a multi-accelerator run.
type ClusterResult = core.ClusterResult

// DefaultClusterConfig returns a 4-chip system with a modest serial link.
func DefaultClusterConfig() ClusterConfig { return core.DefaultClusterConfig() }

// RunCluster simulates alg over g on a multi-accelerator cluster: the graph
// is partitioned across chips that run asynchronously, streaming
// inter-slice events over a latency/bandwidth-limited interconnect.
func RunCluster(cfg ClusterConfig, g *Graph, alg Algorithm) (*ClusterResult, error) {
	cl, err := core.NewCluster(cfg, g, alg)
	if err != nil {
		return nil, err
	}
	return cl.Run()
}

// RunClusterCtx runs like RunCluster with wall-clock cancellation (nil ctx
// = no cancellation).
func RunClusterCtx(ctx context.Context, cfg ClusterConfig, g *Graph, alg Algorithm) (*ClusterResult, error) {
	cl, err := core.NewCluster(cfg, g, alg)
	if err != nil {
		return nil, err
	}
	return cl.RunCtx(ctx)
}

// ServeConfig configures the graph analytics service: resident graphs,
// worker pool and admission queue sizing, deadlines, result cache, and
// warm-start history (README "Serving").
type ServeConfig = serve.Config

// ServeGraphSpec names one resident graph and its source: a Table IV
// stand-in ("WG:tiny"), a graph file path, or a pre-built *Graph.
type ServeGraphSpec = serve.GraphSpec

// Server is the long-lived serving runtime. Expose it with Start (own
// listener) or Handler (mount anywhere); stop with Shutdown, which drains
// in-flight requests.
type Server = serve.Server

// NewServer builds a Server: loads the configured graphs and starts the
// compute worker pool.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// Serving wire types (the /v1/query and /v1/mutate JSON bodies).
type (
	QueryRequest   = serve.QueryRequest
	QueryResponse  = serve.QueryResponse
	MutateRequest  = serve.MutateRequest
	MutateResponse = serve.MutateResponse
	ServeGraphInfo = serve.GraphInfo
	ServeEdge      = serve.EdgeJSON
	VertexValue    = serve.VertexValue
)

// EnergyComponent is one Table V power/area row.
type EnergyComponent = energy.Component

// EnergyTableV returns the paper's published component rows.
func EnergyTableV() []EnergyComponent { return energy.TableV() }

// AcceleratorPowerWatts returns total accelerator power at an activity
// factor (1 = paper's measured activity).
func AcceleratorPowerWatts(activity float64) float64 {
	return energy.AcceleratorPowerWatts(energy.TableV(), activity)
}

// EnergyEfficiencyRatio returns how many times less energy the accelerator
// uses than the 12-core CPU baseline for runs of the given durations.
func EnergyEfficiencyRatio(accelSeconds, cpuSeconds float64) (float64, error) {
	return energy.EfficiencyRatio(nil, accelSeconds, cpuSeconds, 1)
}
