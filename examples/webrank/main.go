// Webrank: rank pages of a web-graph-class workload (the paper's WG
// dataset stand-in) with PageRank-Delta, and show how event coalescing and
// asynchronous lookahead behave over the run — the effects behind the
// paper's Figures 4 and 8.
//
//	go run ./examples/webrank
package main

import (
	"fmt"
	"log"
	"sort"

	"graphpulse"
)

func main() {
	spec, err := graphpulse.DatasetByAbbrev("WG")
	if err != nil {
		log.Fatal(err)
	}
	g, err := spec.Generate(graphpulse.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s-class web graph: %d pages, %d links\n",
		spec.Abbrev, g.NumVertices(), g.NumEdges())

	pr := graphpulse.NewPageRankDelta()
	pr.Threshold = 1e-5 // rank precision / work trade-off
	res, err := graphpulse.Run(graphpulse.OptimizedConfig(), g, pr)
	if err != nil {
		log.Fatal(err)
	}

	// Top pages by rank.
	order := make([]int, g.NumVertices())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return res.Values[order[i]] > res.Values[order[j]] })
	fmt.Println("top pages by rank:")
	for _, v := range order[:10] {
		fmt.Printf("  page %-8d rank %.4f (in-degree would earn it this)\n", v, res.Values[v])
	}

	// The event-flow story: how coalescing keeps the queue small.
	fmt.Printf("\nevent flow over %d scheduler rounds:\n", res.Rounds)
	fmt.Printf("  %-6s %12s %12s %12s\n", "round", "produced", "remaining", "lookahead>0")
	for _, rs := range res.RoundLog {
		if rs.Round%5 != 0 && rs.Round != res.Rounds-1 {
			continue
		}
		ahead := int64(0)
		for b := 1; b < len(rs.Lookahead); b++ {
			ahead += rs.Lookahead[b]
		}
		fmt.Printf("  %-6d %12d %12d %12d\n", rs.Round, rs.Produced, rs.Remaining, ahead)
	}
	fmt.Printf("\ncoalescing eliminated %d of %d event arrivals; %.1f%% of off-chip bytes were useful\n",
		res.EventsCoalesced, res.EventsEmitted+int64(g.NumVertices()), 100*res.Utilization)
}
