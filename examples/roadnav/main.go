// Roadnav: single-source shortest paths on a road-network-like grid — the
// high-diameter, low-skew adversarial case for asynchronous engines — and
// the same query on a social-network topology for contrast. Demonstrates
// SSSP, widest-path (SSWP), and partitioned execution (Section IV-F) when
// the graph exceeds the on-chip queue capacity.
//
//	go run ./examples/roadnav
package main

import (
	"fmt"
	"log"
	"math"

	"graphpulse"
)

func main() {
	const width, height = 128, 128
	g, err := graphpulse.GenerateGrid(width, height, true, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road grid: %dx%d intersections, %d road segments\n", width, height, g.NumEdges())

	src := graphpulse.VertexID(0) // top-left corner
	dst := graphpulse.VertexID(width*height - 1)

	// Shortest path on the accelerator.
	res, err := graphpulse.Run(graphpulse.OptimizedConfig(), g, graphpulse.NewSSSP(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shortest travel cost corner-to-corner: %.3f (in %d cycles, %d rounds)\n",
		res.Values[dst], res.Cycles, res.Rounds)

	// Widest path (max bottleneck capacity) with the same event machinery.
	wres, err := graphpulse.Run(graphpulse.OptimizedConfig(), g, graphpulse.NewSSWP(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("widest corridor corner-to-corner: bottleneck capacity %.3f\n", wres.Values[dst])

	// Reachability census.
	reachable := 0
	for _, d := range res.Values {
		if !math.IsInf(d, 1) {
			reachable++
		}
	}
	fmt.Printf("%d/%d intersections reachable from the depot\n", reachable, g.NumVertices())

	// The same query with the graph forced into 4 slices, as a large
	// deployment would run it (Section IV-F): results must be identical.
	cfg := graphpulse.OptimizedConfig()
	cfg.QueueCapacity = g.NumVertices() / 4
	sliced, err := graphpulse.Run(cfg, g, graphpulse.NewSSSP(src))
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for v := range res.Values {
		if sliced.Values[v] != res.Values[v] {
			same = false
			break
		}
	}
	fmt.Printf("partitioned run: %d slices, %d inter-slice events spilled, identical results: %v\n",
		sliced.Slices, sliced.SpilledEvents, same)
	fmt.Printf("slicing overhead: %.2fx cycles vs single-slice\n",
		float64(sliced.Cycles)/float64(res.Cycles))
}
