// Streaming: keep shortest paths fresh over a mutating graph — served
// online. An in-process analytics server holds the road network resident;
// clients query converged SSSP distances over HTTP while batches of new
// road segments stream in through /v1/mutate. Each batch bumps the graph
// epoch, and the next query warm-starts from the previous fixed point —
// seeding only the correction events the new edges introduce — instead of
// recomputing from scratch (the paper's delta-accumulative model run as a
// service; see README "Serving").
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"time"

	"graphpulse"
)

func main() {
	g, err := graphpulse.GenerateRMAT(graphpulse.RMATParams{
		A: 0.45, B: 0.22, C: 0.22, D: 0.11,
		Scale: 13, EdgeFactor: 6, Weighted: true, Seed: 99, NoiseAmount: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	root := graphpulse.VertexID(0)
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(graphpulse.VertexID(v)) > g.OutDegree(root) {
			root = graphpulse.VertexID(v)
		}
	}
	fmt.Printf("network: %d nodes, %d links; source hub: %d\n",
		g.NumVertices(), g.NumEdges(), root)

	// Serve the network from a resident in-process server.
	srv, err := graphpulse.NewServer(graphpulse.ServeConfig{
		Graphs: []graphpulse.ServeGraphSpec{{Name: "roads", Graph: g}},
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + addr.String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Println("server drained cleanly")
	}()

	// Probe a fixed sample of destinations on every query.
	rng := rand.New(rand.NewSource(7))
	probes := make([]uint32, 64)
	for i := range probes {
		probes[i] = uint32(rng.Intn(g.NumVertices()))
	}

	cold := query(base, root, probes)
	fmt.Printf("cold start: epoch %d, mode %q, %d activations, %.1f ms compute\n\n",
		cold.Epoch, cold.Mode, cold.Activations, cold.ComputeSecs*1e3)

	edges := g.Edges()
	for batch := 1; batch <= 3; batch++ {
		var added []graphpulse.ServeEdge
		for i := 0; i < 50; i++ {
			added = append(added, graphpulse.ServeEdge{
				Src:    uint32(rng.Intn(g.NumVertices())),
				Dst:    uint32(rng.Intn(g.NumVertices())),
				Weight: float32(rng.Float64()*0.5 + 0.01),
			})
		}
		mut := mutate(base, added)

		res := query(base, root, probes)
		if res.Epoch != mut.Epoch {
			log.Fatalf("query answered epoch %d, want %d", res.Epoch, mut.Epoch)
		}

		// Verify the served answer against a from-scratch solve on a
		// locally maintained copy of the mutated graph.
		for _, e := range added {
			edges = append(edges, graphpulse.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
		}
		local, err := graphpulse.NewGraph(g.NumVertices(), edges, true)
		if err != nil {
			log.Fatal(err)
		}
		oracle := graphpulse.Solve(local, graphpulse.NewSSSP(root))
		worst := 0.0
		for _, vv := range res.Values {
			if d := diff(vv.Value, oracle.Values[vv.Vertex]); d > worst {
				worst = d
			}
		}
		fmt.Printf("batch %d: +%d links → epoch %d; served mode %q, %d activations, %.1f ms compute; max divergence vs fresh solve %.1e\n",
			batch, mut.Added, mut.Epoch, res.Mode, res.Activations, res.ComputeSecs*1e3, worst)
		if worst > 0 {
			log.Fatalf("served warm-start diverged from fresh solve by %g", worst)
		}
	}
}

// query posts a /v1/query for SSSP distances at the probe vertices.
func query(base string, root graphpulse.VertexID, probes []uint32) *graphpulse.QueryResponse {
	r := uint32(root)
	var resp graphpulse.QueryResponse
	post(base+"/v1/query", graphpulse.QueryRequest{
		Graph: "roads", Algorithm: "sssp", Root: &r, Vertices: probes, Top: 5,
	}, &resp)
	return &resp
}

// mutate posts one /v1/mutate batch.
func mutate(base string, added []graphpulse.ServeEdge) *graphpulse.MutateResponse {
	var resp graphpulse.MutateResponse
	post(base+"/v1/mutate", graphpulse.MutateRequest{Graph: "roads", Edges: added}, &resp)
	return &resp
}

func post(url string, body, out any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func diff(a, b float64) float64 {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return 0
	}
	return math.Abs(a - b)
}
