// Streaming: keep shortest paths fresh over a mutating graph. A converged
// SSSP answer is updated incrementally as batches of new road segments
// arrive — each batch seeds only the correction events the new edges
// introduce, and the accelerator reconverges from the previous fixed point
// at a small fraction of a cold start's work.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"graphpulse"
)

func main() {
	g, err := graphpulse.GenerateRMAT(graphpulse.RMATParams{
		A: 0.45, B: 0.22, C: 0.22, D: 0.11,
		Scale: 13, EdgeFactor: 6, Weighted: true, Seed: 99, NoiseAmount: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	root := graphpulse.VertexID(0)
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(graphpulse.VertexID(v)) > g.OutDegree(root) {
			root = graphpulse.VertexID(v)
		}
	}
	fmt.Printf("network: %d nodes, %d links; source hub: %d\n",
		g.NumVertices(), g.NumEdges(), root)

	res, err := graphpulse.Run(graphpulse.OptimizedConfig(), g, graphpulse.NewSSSP(root))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold start: %d events processed, %d cycles\n\n",
		res.EventsProcessed, res.Cycles)

	rng := rand.New(rand.NewSource(7))
	state := res.Values
	for batch := 1; batch <= 3; batch++ {
		var added []graphpulse.Edge
		for i := 0; i < 50; i++ {
			added = append(added, graphpulse.Edge{
				Src:    graphpulse.VertexID(rng.Intn(g.NumVertices())),
				Dst:    graphpulse.VertexID(rng.Intn(g.NumVertices())),
				Weight: float32(rng.Float64()*0.5 + 0.01),
			})
		}
		newG, warm, err := graphpulse.IncrementalAfterInsert(
			graphpulse.NewSSSP(root), g, added, state)
		if err != nil {
			log.Fatal(err)
		}
		incr, err := graphpulse.Run(graphpulse.OptimizedConfig(), newG, warm)
		if err != nil {
			log.Fatal(err)
		}
		// Verify against a cold start on the updated graph.
		cold, err := graphpulse.Run(graphpulse.OptimizedConfig(), newG, graphpulse.NewSSSP(root))
		if err != nil {
			log.Fatal(err)
		}
		worst, improved := 0.0, 0
		for v := range cold.Values {
			if d := diff(incr.Values[v], cold.Values[v]); d > worst {
				worst = d
			}
			if incr.Values[v] < state[v] {
				improved++
			}
		}
		fmt.Printf("batch %d: +%d links → %d nodes improved; incremental %d events vs cold %d (%.1f%% of the work); max divergence %.1e\n",
			batch, len(added), improved,
			incr.EventsProcessed, cold.EventsProcessed,
			100*float64(incr.EventsProcessed)/float64(cold.EventsProcessed), worst)
		g, state = newG, incr.Values
	}
}

func diff(a, b float64) float64 {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return 0
	}
	return math.Abs(a - b)
}
