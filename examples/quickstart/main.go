// Quickstart: generate a small power-law graph, run PageRank-Delta on the
// simulated GraphPulse accelerator, and compare against the reference
// solver and the software baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"graphpulse"
)

func main() {
	// A LiveJournal-flavored R-MAT graph: 16k vertices, 196k edges.
	g, err := graphpulse.GenerateRMAT(graphpulse.RMATParams{
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Scale: 14, EdgeFactor: 12, Weighted: true, Seed: 42, NoiseAmount: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 1. Run on the simulated accelerator (the paper's optimized design).
	res, err := graphpulse.Run(graphpulse.OptimizedConfig(), g, graphpulse.NewPageRankDelta())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerator: converged in %d cycles = %.3f ms at 1 GHz (%d rounds)\n",
		res.Cycles, res.Seconds*1e3, res.Rounds)
	fmt.Printf("             %d events processed, %.1f%% of arrivals coalesced in-queue\n",
		res.EventsProcessed,
		100*float64(res.EventsCoalesced)/float64(res.EventsEmitted+int64(g.NumVertices())))

	// 2. Same computation on the host software baseline.
	start := time.Now()
	lig := graphpulse.RunLigra(graphpulse.DefaultLigraConfig(), g, graphpulse.NewPageRankDelta())
	wall := time.Since(start)
	fmt.Printf("software:    %d BSP iterations in %v on this host\n", lig.Iterations, wall)
	fmt.Printf("             simulated speedup over software: %.1fx\n",
		wall.Seconds()/res.Seconds)

	// 3. Verify both against the reference worklist solver.
	ref := graphpulse.Solve(g, graphpulse.NewPageRankDelta())
	worst := 0.0
	for v := range ref.Values {
		if d := math.Abs(res.Values[v] - ref.Values[v]); d > worst {
			worst = d
		}
	}
	fmt.Printf("verification: max |accelerator - reference| = %.2e\n", worst)
}
