// Community: social-network analytics on a Facebook-class graph — weakly
// connected components to find the network's communities, then Adsorption
// label propagation to spread influence scores from seed users, comparing
// the accelerator against the Graphicionado-style BSP baseline on work and
// memory traffic.
//
//	go run ./examples/community
package main

import (
	"fmt"
	"log"

	"graphpulse"
)

func main() {
	spec, err := graphpulse.DatasetByAbbrev("FB")
	if err != nil {
		log.Fatal(err)
	}
	g, err := spec.Generate(graphpulse.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s-class social graph: %d users, %d follows\n",
		spec.Abbrev, g.NumVertices(), g.NumEdges())

	// Connected components (max-label propagation).
	cc, err := graphpulse.Run(graphpulse.OptimizedConfig(), g, graphpulse.NewConnectedComponents())
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[float64]int{}
	for _, label := range cc.Values {
		sizes[label]++
	}
	largest := 0
	for _, n := range sizes {
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("communities: %d components; giant component holds %.1f%% of users\n",
		len(sizes), 100*float64(largest)/float64(g.NumVertices()))

	// Adsorption influence propagation on the inbound-normalized graph
	// (the paper's Section VI-A setup).
	ng := g.NormalizeInbound()
	ads := graphpulse.NewAdsorption()
	res, err := graphpulse.Run(graphpulse.OptimizedConfig(), ng, ads)
	if err != nil {
		log.Fatal(err)
	}
	var maxInf float64
	var maxUser int
	for v, x := range res.Values {
		if x > maxInf {
			maxInf, maxUser = x, v
		}
	}
	fmt.Printf("adsorption: most influential user %d with score %.4f (converged in %d rounds)\n",
		maxUser, maxInf, res.Rounds)

	// Contrast with the BSP accelerator baseline on the same workload.
	gion, err := graphpulse.RunGraphicionado(graphpulse.DefaultGraphicionadoConfig(), ng, graphpulse.NewAdsorption())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGraphPulse vs Graphicionado-style BSP on this workload:\n")
	fmt.Printf("  simulated time:   %.3f ms vs %.3f ms (%.1fx)\n",
		res.Seconds*1e3, gion.Seconds*1e3, gion.Seconds/res.Seconds)
	fmt.Printf("  off-chip traffic: %d vs %d line transfers (%.2fx)\n",
		res.OffChipAccesses(), gion.OffChipAccesses(),
		float64(gion.OffChipAccesses())/float64(res.OffChipAccesses()))
	fmt.Printf("  edge work:        %d events vs %d BSP edge traversals\n",
		res.EventsEmitted, gion.EdgesTraversed)
}
